//! Deliberate lock-order inversion: two ranked locks taken in opposite
//! orders on two threads must produce a deterministic cycle report from the
//! acquisition-order graph.
//!
//! Lives in its own integration-test binary on purpose: the acquisition
//! graph is process-global, and this test *pollutes* it with a cycle. Unit
//! tests inside `sync.rs` (and every other test binary) assert the graph
//! stays clean, so this one runs in a separate process.
//!
//! The detector only exists in debug builds — in release the wrappers
//! compile down to plain `parking_lot` — so the body is cfg-gated. Were the
//! detector stubbed out (edges not recorded, cycles not detected), the
//! asserts below would fail: that is the regression this test pins.

#![cfg(debug_assertions)]

use ray_common::sync::{
    acquisition_edges, detect_cycle, set_panic_on_violation, violations, LockClass,
    OrderedMutex,
};

static LO_A: LockClass = LockClass::new("test.lock_order.a", 20_000);
static LO_B: LockClass = LockClass::new("test.lock_order.b", 20_010);

static LOCK_A: OrderedMutex<u32> = OrderedMutex::new(&LO_A, 0);
static LOCK_B: OrderedMutex<u32> = OrderedMutex::new(&LO_B, 0);

#[test]
fn opposite_order_acquisition_reports_a_cycle() {
    // The second thread's acquisition is a rank violation (B -> A with
    // rank(A) < rank(B)); record it instead of panicking so we can inspect
    // the graph.
    let was = set_panic_on_violation(false);

    // Thread 1: A then B — the legal order.
    let t1 = std::thread::spawn(|| {
        let _a = LOCK_A.lock();
        let _b = LOCK_B.lock();
    });
    t1.join().unwrap();

    // Thread 2: B then A — the inversion. Sequential (t1 already joined),
    // so the test itself can never deadlock; only the *graph* sees the
    // would-be deadlock.
    let t2 = std::thread::spawn(|| {
        let _b = LOCK_B.lock();
        let _a = LOCK_A.lock();
    });
    t2.join().unwrap();

    // The rank check flagged the inversion...
    let v = violations();
    assert!(
        v.iter().any(|m| m.contains("test.lock_order.a") && m.contains("test.lock_order.b")),
        "expected a recorded rank violation naming both classes, got {v:?}"
    );

    // ...and the acquisition graph contains the A<->B cycle.
    let cycle = detect_cycle().expect("opposite-order acquisition must form a cycle");
    assert!(
        cycle.contains(&"test.lock_order.a") && cycle.contains(&"test.lock_order.b"),
        "cycle should involve both test classes, got {cycle:?}"
    );

    // Deterministic: the same graph reports the same cycle every time.
    assert_eq!(detect_cycle(), Some(cycle));

    // Both directed edges are present.
    let edges = acquisition_edges();
    let ab = edges
        .iter()
        .any(|(a, b)| *a == "test.lock_order.a" && *b == "test.lock_order.b");
    let ba = edges
        .iter()
        .any(|(a, b)| *a == "test.lock_order.b" && *b == "test.lock_order.a");
    assert!(ab && ba, "expected both A->B and B->A edges, got {edges:?}");

    set_panic_on_violation(was);
}
