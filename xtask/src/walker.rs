//! The shared file walker and line-scanning primitives every pass builds
//! on: one workspace read, one comment/string stripper, one brace-depth
//! tracker. Scanning is line-oriented and intentionally dumb — no syn, no
//! regex crate, std only — because the gate has to build offline.

use std::path::{Path, PathBuf};

/// One workspace source file, read once and shared by every pass.
pub struct SourceFile {
    /// Path relative to the workspace root (or the path as given, for
    /// explicit-file runs), with `/` separators.
    pub rel: PathBuf,
    pub src: String,
}

impl SourceFile {
    pub fn rel_str(&self) -> String {
        self.rel.to_string_lossy().replace('\\', "/")
    }

    /// True for files that are test code in their entirety: anything under
    /// a `tests/` directory or the lint fixtures.
    pub fn is_test_file(&self) -> bool {
        let rel = self.rel_str();
        rel.split('/').any(|seg| seg == "tests") || rel.starts_with("tests/")
    }

    /// The byte length of the non-test prefix: everything before the first
    /// `#[cfg(test)]` (repo convention keeps test modules at the bottom of
    /// a file). Whole-file for files without one.
    pub fn non_test_line_count(&self) -> usize {
        for (idx, line) in self.src.lines().enumerate() {
            if strip_line_comment(line).contains("#[cfg(test)]") {
                return idx;
            }
        }
        self.src.lines().count()
    }
}

/// The workspace as one read-once file set.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `crates/`, `src/`, `tests/`, and `examples/` under `root`.
    /// `xtask/` itself (and therefore its fixtures) is excluded; fixtures
    /// are only analyzed when passed explicitly.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        for sub in ["crates", "src", "tests", "examples"] {
            let dir = root.join(sub);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut paths)?;
            }
        }
        let mut files = Vec::new();
        for path in paths {
            let src = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(SourceFile { rel, src });
        }
        Ok(Workspace { root: root.to_path_buf(), files })
    }

    /// Loads explicitly named files (fixture self-tests, ad-hoc checks).
    pub fn load_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        for path in paths {
            let src = std::fs::read_to_string(path)?;
            files.push(SourceFile { rel: path.clone(), src });
        }
        Ok(Workspace { root: root.to_path_buf(), files })
    }
}

/// Recursively collects `.rs` files under `dir` into `out` (sorted).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Drops a `//` line comment. Keeps `//` that appears inside a string
/// literal out of scope by only cutting at a `//` with an even number of
/// unescaped quotes before it — good enough for this codebase.
pub fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Replaces the contents of string and char literals with spaces so that
/// brace counting and pattern matching cannot be fooled by `"{"` or
/// `'{'` (format strings are full of braces). Length is preserved, so
/// byte offsets into the blanked line match the original.
pub fn blank_literals(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if i + 1 < bytes.len() => {
                            out.push(b' ');
                            out.push(b' ');
                            i += 2;
                        }
                        b'"' => {
                            out.push(b'"');
                            i += 1;
                            break;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\'') vs lifetime ('a in
                // generics). A char literal closes with a quote within a
                // few bytes; a lifetime does not.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes.get(i + 3) == Some(&b'\'')
                } else {
                    bytes.get(i + 2) == Some(&b'\'')
                };
                if close {
                    let len = if bytes.get(i + 1) == Some(&b'\\') { 4 } else { 3 };
                    out.push(b'\'');
                    out.extend(std::iter::repeat_n(b' ', len - 2));
                    out.push(b'\'');
                    i += len;
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_else(|_| line.to_string())
}

/// A comment- and literal-stripped view of one line, safe for pattern
/// matching and brace counting.
pub fn code_of(line: &str) -> String {
    blank_literals(strip_line_comment(line))
}

/// True when `word` appears in `haystack` with non-identifier characters
/// (or line edges) on both sides.
pub fn has_word(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack.as_bytes()[at - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[at - 1] != b'_';
        let end = at + word.len();
        let after_ok = end >= haystack.len()
            || !haystack.as_bytes()[end].is_ascii_alphanumeric()
                && haystack.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Net brace depth change and minimum depth reached over one
/// literal-stripped line, starting from `depth`. Returns
/// `(depth_after, min_depth_during)`.
pub fn brace_depth_step(code: &str, depth: i32) -> (i32, i32) {
    let mut d = depth;
    let mut min = depth;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => {
                d -= 1;
                min = min.min(d);
            }
            _ => {}
        }
    }
    (d, min)
}

/// The identifier chain ending just before byte `end` of `code`:
/// `self.index.lock` with `end` at the `(` of `.lock(` yields
/// `["self", "index", "lock"]`. Chains are broken by anything other than
/// identifier characters and `.`; a `()` pair mid-chain (method call) is
/// skipped so `self.ring(node).buf.lock()` resolves through the call.
pub fn ident_chain_before(code: &str, end: usize) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut idents: Vec<String> = Vec::new();
    let mut i = end;
    loop {
        // Skip a () or [] group (method call / index) before the dot.
        while i > 0 && (bytes[i - 1] == b')' || bytes[i - 1] == b']') {
            let (close, open) = if bytes[i - 1] == b')' { (b')', b'(') } else { (b']', b'[') };
            let mut depth = 0usize;
            let mut j = i;
            while j > 0 {
                j -= 1;
                if bytes[j] == close {
                    depth += 1;
                } else if bytes[j] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            if j == i {
                break;
            }
            i = j;
        }
        // Collect one identifier.
        let end_ident = i;
        while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            i -= 1;
        }
        if i == end_ident {
            break;
        }
        idents.push(code[i..end_ident].to_string());
        if i == 0 || bytes[i - 1] != b'.' {
            break;
        }
        i -= 1; // consume the '.'
    }
    idents.reverse();
    idents
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_hides_braces_in_strings() {
        let code = code_of("write!(f, \"{{x}} {}\", v); // { comment");
        assert!(!code.contains('x'));
        let (d, _) = brace_depth_step(&code, 0);
        assert_eq!(d, 0, "string braces must not count: {code:?}");
    }

    #[test]
    fn blanking_handles_char_literals_and_lifetimes() {
        let code = code_of("let c = '{'; fn f<'a>(x: &'a str) {}");
        let (d, _) = brace_depth_step(&code, 0);
        assert_eq!(d, 0, "char-literal brace must not count: {code:?}");
    }

    #[test]
    fn ident_chain_resolves_through_calls() {
        let code = "let g = self.index.lock();";
        let at = code.find(".lock").unwrap() + ".lock".len();
        assert_eq!(ident_chain_before(code, at), vec!["self", "index", "lock"]);
        let code = "self.ring(node).buf.lock()";
        let at = code.find(".lock").unwrap() + ".lock".len();
        assert_eq!(ident_chain_before(code, at), vec!["self", "ring", "buf", "lock"]);
    }

    #[test]
    fn min_depth_tracks_closers() {
        let (d, min) = brace_depth_step("} else {", 2);
        assert_eq!(d, 2);
        assert_eq!(min, 1);
    }
}
