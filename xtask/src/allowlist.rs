//! The per-rule allowlist / ratchet: `xtask/analyze.allow`.
//!
//! Each non-comment line grants a **budget** of findings to one
//! `(rule, file)` pair:
//!
//! ```text
//! rule  path/relative/to/root.rs  budget  # reason (required)
//! ```
//!
//! Semantics are a ratchet, not a waiver:
//!
//! - more findings than the budget → hard failure (the violation is new);
//! - fewer findings than the budget → the run still passes, but the entry
//!   is reported as *stale* so the budget gets tightened
//!   (`analyze --update-ratchet` rewrites counts in place);
//! - a budget entry for a `(rule, file)` with zero findings is stale too.
//!
//! Budgets therefore only ever shrink as violations are burned down, and
//! a regression anywhere fails the gate immediately.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::findings::Finding;

/// One parsed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    pub rule: String,
    pub file: String,
    pub max: usize,
    pub reason: String,
    /// 1-based line in the allowlist file.
    pub line: usize,
}

/// The parsed allowlist.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    pub budgets: Vec<Budget>,
}

/// A parse failure (malformed line).
#[derive(Debug)]
pub struct AllowlistError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

impl Allowlist {
    pub fn parse(src: &str) -> Result<Allowlist, AllowlistError> {
        let mut budgets = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (entry, reason) = match trimmed.split_once('#') {
                Some((e, r)) => (e.trim(), r.trim().to_string()),
                None => {
                    return Err(AllowlistError {
                        line,
                        message: "entry needs a `# reason` comment".into(),
                    })
                }
            };
            let mut parts = entry.split_whitespace();
            let (Some(rule), Some(file), Some(max)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(AllowlistError {
                    line,
                    message: format!("expected `rule path budget # reason`, got {trimmed:?}"),
                });
            };
            if parts.next().is_some() {
                return Err(AllowlistError {
                    line,
                    message: "trailing tokens after budget".into(),
                });
            }
            let max: usize = max.parse().map_err(|_| AllowlistError {
                line,
                message: format!("budget {max:?} is not a number"),
            })?;
            budgets.push(Budget {
                rule: rule.to_string(),
                file: file.to_string(),
                max,
                reason,
                line,
            });
        }
        Ok(Allowlist { budgets })
    }

    pub fn load(path: &Path) -> Result<Allowlist, AllowlistError> {
        match std::fs::read_to_string(path) {
            Ok(src) => Allowlist::parse(&src),
            Err(_) => Ok(Allowlist::default()),
        }
    }

    fn budget_for(&self, rule: &str, file: &str) -> Option<&Budget> {
        self.budgets.iter().find(|b| b.rule == rule && b.file == file)
    }

    /// Splits findings into `(allowed, denied, stale)`.
    ///
    /// Findings for a `(rule, file)` group within its budget are allowed;
    /// a group over budget denies *every* finding in the group (so the
    /// report shows the full picture, not just the overflow). `stale`
    /// lists budgets whose actual count is below the granted maximum.
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
        for f in findings {
            let key = (f.rule.to_string(), f.file.to_string_lossy().replace('\\', "/"));
            groups.entry(key).or_default().push(f);
        }
        let mut allowed = Vec::new();
        let mut denied = Vec::new();
        let mut over_budget = Vec::new();
        for ((rule, file), group) in &groups {
            match self.budget_for(rule, file) {
                Some(b) if group.len() <= b.max => allowed.extend(group.iter().cloned()),
                Some(b) => {
                    over_budget.push(format!(
                        "{file}: [{rule}] {} finding(s) exceed budget {} \
                         (allowlist line {})",
                        group.len(),
                        b.max,
                        b.line
                    ));
                    denied.extend(group.iter().cloned());
                }
                None => denied.extend(group.iter().cloned()),
            }
        }
        let mut stale = Vec::new();
        for b in &self.budgets {
            let actual = groups
                .get(&(b.rule.clone(), b.file.clone()))
                .map_or(0, Vec::len);
            if actual < b.max {
                stale.push(format!(
                    "{}: [{}] budget {} but only {} finding(s) — tighten \
                     (allowlist line {}; run `analyze --update-ratchet`)",
                    b.file, b.rule, b.max, actual, b.line
                ));
            }
        }
        Applied { allowed, denied, over_budget, stale }
    }

    /// Rewrites the allowlist with budgets set to the actual finding
    /// counts, dropping entries whose count reached zero. Reasons and
    /// standalone comment lines are preserved.
    pub fn rewritten(&self, original: &str, findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            let key = (f.rule.to_string(), f.file.to_string_lossy().replace('\\', "/"));
            *counts.entry(key).or_default() += 1;
        }
        let mut out = String::new();
        for (idx, raw) in original.lines().enumerate() {
            let line = idx + 1;
            match self.budgets.iter().find(|b| b.line == line) {
                None => {
                    out.push_str(raw);
                    out.push('\n');
                }
                Some(b) => {
                    let actual =
                        counts.get(&(b.rule.clone(), b.file.clone())).copied().unwrap_or(0);
                    if actual > 0 {
                        out.push_str(&format!(
                            "{} {} {}  # {}\n",
                            b.rule, b.file, actual, b.reason
                        ));
                    }
                    // Zero findings: drop the line (burned down).
                }
            }
        }
        out
    }
}

/// Result of applying the allowlist.
pub struct Applied {
    pub allowed: Vec<Finding>,
    pub denied: Vec<Finding>,
    /// Human-readable over-budget group summaries.
    pub over_budget: Vec<String>,
    /// Human-readable stale-budget notes (non-fatal).
    pub stale: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn f(rule: &'static str, file: &str, line: usize) -> Finding {
        Finding { file: PathBuf::from(file), line, rule, excerpt: "x".into() }
    }

    #[test]
    fn parse_requires_reason() {
        assert!(Allowlist::parse("panic-freedom a.rs 3\n").is_err());
        let a = Allowlist::parse("# header\npanic-freedom a.rs 3 # legacy\n").unwrap();
        assert_eq!(a.budgets.len(), 1);
        assert_eq!(a.budgets[0].max, 3);
        assert_eq!(a.budgets[0].reason, "legacy");
    }

    #[test]
    fn within_budget_allows_over_budget_denies() {
        let a = Allowlist::parse("r a.rs 2 # ok\n").unwrap();
        let applied = a.apply(vec![f("r", "a.rs", 1), f("r", "a.rs", 2)]);
        assert_eq!(applied.allowed.len(), 2);
        assert!(applied.denied.is_empty());
        assert!(applied.stale.is_empty());

        let applied =
            a.apply(vec![f("r", "a.rs", 1), f("r", "a.rs", 2), f("r", "a.rs", 3)]);
        assert_eq!(applied.denied.len(), 3);
        assert_eq!(applied.over_budget.len(), 1);
    }

    #[test]
    fn unlisted_findings_are_denied_and_shrunk_budgets_go_stale() {
        let a = Allowlist::parse("r a.rs 5 # was worse\n").unwrap();
        let applied = a.apply(vec![f("r", "a.rs", 1), f("other", "b.rs", 9)]);
        assert_eq!(applied.allowed.len(), 1);
        assert_eq!(applied.denied.len(), 1);
        assert_eq!(applied.stale.len(), 1, "budget 5 vs 1 actual is stale");
    }

    #[test]
    fn rewrite_tightens_and_drops() {
        let src = "# keep this comment\nr a.rs 5 # was worse\nr gone.rs 2 # done\n";
        let a = Allowlist::parse(src).unwrap();
        let out = a.rewritten(src, &[f("r", "a.rs", 1), f("r", "a.rs", 2)]);
        assert!(out.contains("# keep this comment"));
        assert!(out.contains("r a.rs 2  # was worse"));
        assert!(!out.contains("gone.rs"));
    }
}
