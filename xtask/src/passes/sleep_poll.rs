//! **sleep-in-loop** — `thread::sleep` inside a loop body is a poll.
//! Polls burn latency (half the sleep interval on average) and CPU, and
//! they hide ordering bugs that a condvar wait would surface. The repo's
//! `sync` layer exposes `Condvar`-backed waiting (`OrderedCondvar`,
//! `wait_while_timeout`) — loops should block on a condition, not nap.
//!
//! Deliberate cadence loops (the GCS flusher interval, heartbeat pacing,
//! chaos-injection jitter) carry an allowlist budget with a reason.

use crate::findings::Finding;
use crate::walker::{brace_depth_step, code_of, SourceFile, Workspace};

use super::{AnalyzeCtx, Pass};

/// Crates whose runtime loops must not sleep-poll. Simulation crates
/// (bench, rl, bsp examples) model time with sleeps by design and are
/// out of scope.
pub const SLEEP_POLL_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/gcs/src",
    "crates/scheduler/src",
    "crates/object-store/src",
    "crates/transport/src",
    "crates/common/src",
    "crates/serve/src",
    "src",
];

pub struct SleepPoll;

impl Pass for SleepPoll {
    fn name(&self) -> &'static str {
        "sleep-poll"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["sleep-in-loop"]
    }

    fn run(&self, ctx: &AnalyzeCtx, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if !ctx.in_scope(file, SLEEP_POLL_SCOPE) {
                continue;
            }
            findings.extend(check_file(file));
        }
        findings
    }
}

/// Flags `thread::sleep` calls lexically inside a `loop`/`while`/`for`
/// body in the file's non-test region.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let limit = file.non_test_line_count();
    let mut findings = Vec::new();
    // Brace depths at which a loop body opened; a sleep while this stack
    // is non-empty is inside a loop.
    let mut loop_stack: Vec<i32> = Vec::new();
    let mut depth: i32 = 0;
    // A loop keyword seen whose `{` has not arrived yet (condition spans
    // lines).
    let mut pending_loop = false;

    for (idx, raw) in file.src.lines().enumerate() {
        if idx >= limit {
            break;
        }
        let code = code_of(raw);
        let starts_loop = is_loop_header(&code);

        if (starts_loop || pending_loop) && code.contains('{') {
            // The loop body opens at the depth after this line's first `{`.
            loop_stack.push(depth + 1);
            pending_loop = false;
        } else if starts_loop {
            pending_loop = true;
        }

        let (after, _min) = brace_depth_step(&code, depth);

        // `depth.max(after)` catches a sleep on the same line that opens
        // the loop (`while x { thread::sleep(..); }`).
        if (code.contains("thread::sleep(") || code.contains("sleep(Duration"))
            && loop_stack.last().is_some_and(|open| depth.max(after) >= *open)
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: "sleep-in-loop",
                excerpt: raw.trim().to_string(),
            });
        }

        depth = after;
        while loop_stack.last().is_some_and(|open| depth < *open) {
            loop_stack.pop();
        }
    }
    findings
}

/// Whether a line opens a loop: `loop {`, `while ...`, `for ... in ...`.
fn is_loop_header(code: &str) -> bool {
    let t = code.trim_start();
    t == "loop"
        || t.starts_with("loop ")
        || t.starts_with("loop{")
        || t.starts_with("while ")
        || t.starts_with("while(")
        || t.starts_with("for ")
        || t.strip_prefix("'").is_some_and(|rest| {
            // labeled loop: `'outer: loop {`
            rest.split_once(':')
                .is_some_and(|(_, after)| is_loop_header(after))
        })
}
