//! **Static lock-order analysis** — the tentpole pass.
//!
//! The runtime rank checker (DESIGN.md §9) only trips when a debug run
//! actually interleaves two locks; this pass rejects statically-visible
//! rank inversions at lint time, before any test runs.
//!
//! Per file it (1) maps bindings to lock classes from
//! `OrderedMutex::new(&classes::X, ..)` construction sites, (2) walks
//! function bodies tracking guard liveness by brace depth (a `let`-bound
//! guard dies when its enclosing block closes or is `drop`ped; a guard
//! born in an `if let`/`while let`/`match`/`for` header lives through the
//! construct's block; any other temporary lives to the end of its
//! statement), and (3) records an acquisition edge `A → B` whenever a
//! lock of class B is taken while a guard of class A is live. Edges from
//! every file merge into one workspace acquisition graph:
//!
//! - **lock-order-inversion** — an edge whose destination rank is not
//!   strictly greater than its source rank (the total-order rule, same
//!   class included);
//! - **lock-order-cycle** — a cycle in the graph (possible among
//!   file-local classes whose ranks are test-scoped);
//! - **rank-table-drift** — the `sync::classes` rank table and the
//!   DESIGN.md §9 table disagree (class missing on either side, or rank
//!   mismatch).
//!
//! Resolution is conservative: acquisitions whose receiver cannot be
//! mapped to a class constructed in the same file are skipped, so the
//! pass under-approximates (no false edges from unknown receivers) and
//! the debug-build runtime checker remains the dynamic backstop.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::findings::Finding;
use crate::registry::{
    collect_lock_class_statics, parse_design_rank_table, ClassRegistry,
};
use crate::walker::{code_of, SourceFile, Workspace};

use super::{AnalyzeCtx, Pass};

pub struct LockOrder;

impl Pass for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["lock-order-inversion", "lock-order-cycle", "rank-table-drift"]
    }

    fn run(&self, ctx: &AnalyzeCtx, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
        for file in &ws.files {
            for edge in file_edges(file, &ctx.registry) {
                edges
                    .entry((edge.from.clone(), edge.to.clone()))
                    .or_insert(edge);
            }
        }

        for edge in edges.values() {
            if let (Some(fr), Some(tr)) = (edge.from_rank, edge.to_rank) {
                if tr <= fr {
                    findings.push(Finding {
                        file: edge.file.clone(),
                        line: edge.line,
                        rule: "lock-order-inversion",
                        excerpt: format!(
                            "acquires {} (rank {tr}) while holding {} (rank {fr}): {}",
                            edge.to, edge.from, edge.excerpt
                        ),
                    });
                }
            }
        }

        findings.extend(find_cycles(&edges));

        if let Some(design) = &ctx.design_md {
            findings.extend(rank_table_drift(&ctx.registry, design));
        }
        findings
    }
}

/// One observed "held A while acquiring B" edge.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub from_rank: Option<u32>,
    pub to: String,
    pub to_rank: Option<u32>,
    pub file: PathBuf,
    pub line: usize,
    pub excerpt: String,
}

#[derive(Debug)]
struct Guard {
    /// Binding name for `let`-bound guards (`drop(name)` kills them);
    /// `None` for header/temporary guards.
    name: Option<String>,
    class: String,
    /// The guard dies when brace depth drops below this.
    scope_depth: i32,
    /// Temporary guards additionally die at the end of their line.
    temp: bool,
}

/// Extracts acquisition edges from one file.
pub fn file_edges(file: &SourceFile, registry: &ClassRegistry) -> Vec<Edge> {
    let local = collect_lock_class_statics(&file.src);
    let rank_of = |class: &str| -> Option<u32> {
        registry.rank(class).or_else(|| local.get(class).copied().flatten())
    };

    let bindings = lock_bindings(&file.src);
    let limit = file.non_test_line_count();

    let mut edges = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;

    for (idx, raw) in file.src.lines().enumerate() {
        if idx >= limit {
            break;
        }
        let code = code_of(raw);
        let bytes = code.as_bytes();
        let line_ends_open = code.trim_end().ends_with('{');

        // Walk the line character by character so braces, drops, and
        // acquisitions are seen in source order.
        let mut i = 0usize;
        let mut line_temp_guards = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    depth += 1;
                    i += 1;
                }
                b'}' => {
                    depth -= 1;
                    guards.retain(|g| g.scope_depth <= depth);
                    i += 1;
                }
                b'd' if code[i..].starts_with("drop(")
                    && (i == 0
                        || (!bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'_')) =>
                {
                    let inner =
                        code[i + 5..].split(')').next().unwrap_or("").trim().to_string();
                    guards.retain(|g| g.name.as_deref() != Some(inner.as_str()));
                    i += 5;
                }
                b'.' => {
                    let acq = [".lock()", ".read()", ".write()"]
                        .iter()
                        .find(|p| code[i..].starts_with(**p));
                    if let Some(pat) = acq {
                        // `.lock` ends right before the `(`.
                        let method_end = i + pat.len() - 2;
                        let chain = crate::walker::ident_chain_before(&code, method_end);
                        // chain = [.., receiver, method]
                        let receiver = chain
                            .len()
                            .checked_sub(2)
                            .and_then(|r| chain.get(r))
                            .cloned();
                        let class = receiver
                            .as_deref()
                            .and_then(|r| bindings.get(r))
                            .cloned()
                            .flatten();
                        if let Some(class) = class {
                            for g in &guards {
                                edges.push(Edge {
                                    from: g.class.clone(),
                                    from_rank: rank_of(&g.class),
                                    to: class.clone(),
                                    to_rank: rank_of(&class),
                                    file: file.rel.clone(),
                                    line: idx + 1,
                                    excerpt: raw.trim().to_string(),
                                });
                            }
                            let stmt = statement_prefix(&code, i);
                            // `.lock().clone()` etc.: the chained call
                            // consumes the guard, so what a `let` binds is
                            // the chain result, not the guard — it dies at
                            // statement end. (Header scrutinee temporaries
                            // still live through the construct.)
                            let chained =
                                code[i + pat.len()..].trim_start().starts_with('.');
                            if is_control_header(stmt) && line_ends_open {
                                // Header temporary (`if let`/`while let`/
                                // `match`/`for` scrutinee): lives through
                                // the construct's block, which opens at
                                // the end of this line.
                                guards.push(Guard {
                                    name: None,
                                    class,
                                    scope_depth: depth + 1,
                                    temp: false,
                                });
                            } else if let Some(name) =
                                let_binding_name(stmt).filter(|_| !chained)
                            {
                                guards.push(Guard {
                                    name: Some(name),
                                    class,
                                    scope_depth: depth,
                                    temp: false,
                                });
                            } else {
                                guards.push(Guard {
                                    name: None,
                                    class,
                                    scope_depth: depth,
                                    temp: true,
                                });
                                line_temp_guards += 1;
                            }
                        }
                        i += pat.len();
                    } else {
                        i += 1;
                    }
                }
                b';' => {
                    // Statement end: temporaries die.
                    if line_temp_guards > 0 {
                        guards.retain(|g| !g.temp);
                        line_temp_guards = 0;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        // Line end: temporaries die.
        guards.retain(|g| !g.temp);
    }
    edges
}

/// Maps binding names to the lock class they are constructed with, from
/// `let NAME = Ordered*::new(&classes::X, ..)` and struct-literal
/// `NAME: Ordered*::new(&classes::X, ..)` sites. A name constructed with
/// two different classes in one file maps to `None` (ambiguous — skipped).
fn lock_bindings(src: &str) -> BTreeMap<String, Option<String>> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out: BTreeMap<String, Option<String>> = BTreeMap::new();
    for (idx, raw) in lines.iter().enumerate() {
        let code = code_of(raw);
        for ctor in ["OrderedMutex::new(", "OrderedRwLock::new("] {
            let mut search = 0usize;
            while let Some(pos) = code[search..].find(ctor) {
                let at = search + pos;
                let open = at + ctor.len();
                // The legacy helper joins wrapped argument lists.
                let stripped: Vec<&str> =
                    lines.iter().map(|l| crate::walker::strip_line_comment(l)).collect();
                // Recompute the open offset on the comment-stripped line
                // (identical up to blanked literals, so offsets match).
                let first_arg = super::locks::first_argument(&stripped, idx, open);
                let class = first_arg
                    .trim()
                    .strip_prefix('&')
                    .map(|p| p.trim().split("::").last().unwrap_or("").trim().to_string())
                    .filter(|c| !c.is_empty());
                if let Some(class) = class {
                    if let Some(name) = binding_name_before(&code, at) {
                        match out.get(&name) {
                            Some(Some(existing)) if *existing != class => {
                                out.insert(name, None);
                            }
                            Some(_) => {}
                            None => {
                                out.insert(name, Some(class));
                            }
                        }
                    }
                }
                search = open;
            }
        }
    }
    out
}

/// The binding a construction at byte `at` initializes: `let [mut] NAME =`
/// or struct-literal / field-init `NAME:` immediately before it.
fn binding_name_before(code: &str, at: usize) -> Option<String> {
    let prefix = statement_prefix(code, at).trim_end();
    if let Some(eq_pos) = prefix.rfind('=') {
        let head = prefix[..eq_pos].trim_end();
        if let Some(let_pos) = head.rfind("let ") {
            let name = head[let_pos + 4..].trim().trim_start_matches("mut ").trim();
            let name: String = name
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        return None;
    }
    let head = prefix.strip_suffix(':')?.trim_end();
    let name: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() { None } else { Some(name) }
}

/// The slice of `code` from the last statement boundary (`;` or `{`)
/// before byte `at` to `at`.
fn statement_prefix(code: &str, at: usize) -> &str {
    let start = code[..at]
        .rfind([';', '{'])
        .map(|p| p + 1)
        .unwrap_or(0);
    &code[start..at]
}

/// The name bound by a plain `let [mut] NAME = ...` statement prefix;
/// `None` for destructuring patterns and non-let statements.
fn let_binding_name(stmt: &str) -> Option<String> {
    let eq_pos = stmt.rfind('=')?;
    let head = stmt[..eq_pos].trim_end();
    let let_pos = head.rfind("let ")?;
    let name = head[let_pos + 4..].trim();
    let name = name.strip_prefix("mut ").unwrap_or(name).trim();
    // Reject destructuring patterns and type ascriptions conservatively.
    let ident: String =
        name.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    if ident.is_empty() || ident.len() != name.len() && !name[ident.len()..].trim_start().starts_with(':') {
        return None;
    }
    Some(ident)
}

/// Whether a statement prefix is an `if`/`while`/`match`/`for` header
/// (whose temporaries live through the construct's block).
fn is_control_header(stmt: &str) -> bool {
    let s = stmt.trim_start();
    ["if ", "if(", "while ", "while(", "match ", "for ", "else if "]
        .iter()
        .any(|k| s.starts_with(k))
}

/// DFS cycle detection over the acquisition graph.
fn find_cycles(edges: &BTreeMap<(String, String), Edge>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut findings = Vec::new();
    let mut done: std::collections::BTreeSet<&str> = Default::default();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        while let Some((node, next)) = stack.last_mut() {
            let succs = adj.get(*node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succs.len() {
                let succ = succs[*next];
                *next += 1;
                if let Some(pos) = path.iter().position(|n| *n == succ) {
                    // Found a cycle: path[pos..] + succ.
                    let cycle: Vec<&str> = path[pos..].iter().copied().chain([succ]).collect();
                    let site = &edges[&(path[path.len() - 1].to_string(), succ.to_string())];
                    let desc = cycle.join(" -> ");
                    let finding = Finding {
                        file: site.file.clone(),
                        line: site.line,
                        rule: "lock-order-cycle",
                        excerpt: format!("acquisition cycle {desc}: {}", site.excerpt),
                    };
                    if !findings.contains(&finding) {
                        findings.push(finding);
                    }
                } else if !done.contains(succ) {
                    stack.push((succ, 0));
                    path.push(succ);
                }
            } else {
                done.insert(*node);
                stack.pop();
                path.pop();
            }
        }
    }
    findings
}

/// Cross-checks the code's rank table against the DESIGN.md §9 table.
fn rank_table_drift(registry: &ClassRegistry, design_md: &str) -> Vec<Finding> {
    let design = Path::new("DESIGN.md");
    let rows = parse_design_rank_table(design_md);
    let mut findings = Vec::new();
    if rows.is_empty() {
        return findings;
    }
    let doc: BTreeMap<&str, (u32, usize)> =
        rows.iter().map(|r| (r.class.as_str(), (r.rank, r.line))).collect();
    for (class, rank) in registry.entries() {
        match (doc.get(class), rank) {
            (None, _) => findings.push(Finding {
                file: design.to_path_buf(),
                line: rows[0].line,
                rule: "rank-table-drift",
                excerpt: format!(
                    "class {class} (rank {}) is in sync::classes but missing from the \
                     DESIGN.md §9 rank table",
                    rank.map_or("?".to_string(), |r| r.to_string())
                ),
            }),
            (Some((doc_rank, line)), Some(code_rank)) if *doc_rank != code_rank => {
                findings.push(Finding {
                    file: design.to_path_buf(),
                    line: *line,
                    rule: "rank-table-drift",
                    excerpt: format!(
                        "class {class}: DESIGN.md says rank {doc_rank}, \
                         sync::classes says {code_rank}"
                    ),
                })
            }
            _ => {}
        }
    }
    for row in &rows {
        if !registry.contains(&row.class) {
            findings.push(Finding {
                file: design.to_path_buf(),
                line: row.line,
                rule: "rank-table-drift",
                excerpt: format!(
                    "class {} (rank {}) is in the DESIGN.md §9 table but not in \
                     sync::classes",
                    row.class, row.rank
                ),
            });
        }
    }
    findings
}
