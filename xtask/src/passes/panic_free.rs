//! **panic-freedom** — non-test library code of the runtime crates must
//! not contain implicit panic sites. A worker thread that panics poisons
//! nothing (our `OrderedMutex` is poison-free) but silently dies, and the
//! paper's fault-tolerance story depends on failures being *observed*
//! (heartbeat timeout → lineage re-execution), not swallowed. Explicit
//! invariants are still allowed, but must say so:
//! `expect("invariant: ...")` documents the proof obligation.
//!
//! Two rules:
//!
//! * `panic-freedom` — `.unwrap()`, `.expect(..)` without an
//!   `"invariant: "` message, `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!` in non-test code.
//! * `slice-index` — direct `expr[index]` indexing, which panics out of
//!   bounds; use `.get(..)` or document via the allowlist.
//!
//! Existing sites are held by the burn-down allowlist
//! (`xtask/analyze.allow`); the budget only ratchets down.

use crate::findings::Finding;
use crate::walker::{code_of, SourceFile, Workspace};

use super::{AnalyzeCtx, Pass};

/// Crates whose library code must be panic-free.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "crates/core/src",
    "crates/gcs/src",
    "crates/scheduler/src",
    "crates/object-store/src",
    "crates/serve/src",
];

pub struct PanicFree;

impl Pass for PanicFree {
    fn name(&self) -> &'static str {
        "panic-free"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["panic-freedom", "slice-index"]
    }

    fn run(&self, ctx: &AnalyzeCtx, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if !ctx.in_scope(file, PANIC_FREE_CRATES) {
                continue;
            }
            findings.extend(check_file(file));
        }
        findings
    }
}

/// Flags panic sites in one file's non-test region.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let limit = file.non_test_line_count();
    let mut findings = Vec::new();
    for (idx, raw) in file.src.lines().enumerate() {
        if idx >= limit {
            break;
        }
        let code = code_of(raw);
        let trimmed = code.trim_start();
        // assert! family is a deliberate, loud check — not a silent panic
        // site; debug_assert! compiles out of release builds.
        if trimmed.starts_with("assert!")
            || trimmed.starts_with("assert_eq!")
            || trimmed.starts_with("assert_ne!")
            || trimmed.starts_with("debug_assert")
        {
            continue;
        }
        let mut push = |rule: &'static str| {
            findings.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule,
                excerpt: raw.trim().to_string(),
            });
        };

        if code.contains(".unwrap()") {
            push("panic-freedom");
        }
        if let Some(pos) = code.find(".expect(") {
            // `expect("invariant: ...")` documents a proof obligation and
            // is allowed. Check against the *raw* line: literals are
            // blanked in `code`.
            let documented = raw[pos..].contains(".expect(\"invariant: ");
            if !documented {
                push("panic-freedom");
            }
        }
        for mac in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            if let Some(pos) = code.find(mac) {
                let boundary = pos == 0 || {
                    let b = code.as_bytes()[pos - 1];
                    !b.is_ascii_alphanumeric() && b != b'_'
                };
                if boundary {
                    push("panic-freedom");
                }
            }
        }

        if has_slice_index(&code) {
            push("slice-index");
        }
    }
    findings
}

/// Detects `ident[expr]` / `)[expr]` indexing. Skips attribute lines
/// (`#[...]`), macro brackets (`vec![`), and `[0..4]`-style range slicing
/// of byte buffers is still flagged (it panics the same way).
fn has_slice_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    let trimmed = code.trim_start();
    if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
        return false;
    }
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        // `ident[` or `)[` or `][` — an index expression. `!` excludes
        // macros (`vec![`), `#` attributes, whitespace excludes array
        // literals (`= [`, `&[`, `(` etc. are not index positions).
        let indexes = prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !indexes {
            continue;
        }
        // Array *type* syntax `[u8; 4]` never follows an ident directly,
        // so no further filtering needed; but `&arr[..]` full-range
        // reslicing cannot panic — skip exact `[..]`.
        if code[i..].starts_with("[..]") {
            continue;
        }
        return true;
    }
    false
}
