//! **trace-coverage** — every `TraceEventKind` variant must be (a)
//! emitted somewhere in runtime code and (b) asserted somewhere in a
//! test. A trace kind nobody emits is dead schema; a kind nobody asserts
//! is untested observability — PR 5's postmortem found exactly that
//! (spill/eviction events silently vanished for two PRs because no test
//! pinned them).
//!
//! Rules:
//! * `trace-kind-unemitted` — variant never constructed in non-test
//!   runtime code.
//! * `trace-kind-unasserted` — variant never named in any test file or
//!   `#[cfg(test)]` region. Assertion helpers that imply coverage of
//!   specific kinds (`deps_fetched_before_running`,
//!   `reconstructed_exactly`) count for the kinds they check.

use std::collections::BTreeMap;

use crate::findings::Finding;
use crate::walker::{code_of, Workspace};

use super::{AnalyzeCtx, Pass};

/// The file defining the trace schema.
pub const TRACE_SCHEMA_FILE: &str = "crates/common/src/trace.rs";

/// Helper methods on `TraceAssert` that assert specific kinds without
/// naming them: calling the helper in a test covers the listed variants.
const ASSERT_HELPERS: &[(&str, &[&str])] = &[
    ("deps_fetched_before_running(", &["DepsFetched", "Running"]),
    ("reconstructed_exactly(", &["Reconstructing"]),
];

pub struct TraceCoverage;

impl Pass for TraceCoverage {
    fn name(&self) -> &'static str {
        "trace-coverage"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["trace-kind-unemitted", "trace-kind-unasserted"]
    }

    fn run(&self, _ctx: &AnalyzeCtx, ws: &Workspace) -> Vec<Finding> {
        check_workspace(ws)
    }
}

/// Runs the coverage check over a workspace. No-op when no file defines
/// `enum TraceEventKind` (explicit-file runs without the schema).
pub fn check_workspace(ws: &Workspace) -> Vec<Finding> {
    let Some((schema_file, variants)) = find_variants(ws) else {
        return Vec::new();
    };

    // variant -> (emitted, asserted)
    let mut cov: BTreeMap<&str, (bool, bool)> = variants
        .iter()
        .map(|(name, _)| (name.as_str(), (false, false)))
        .collect();

    for file in &ws.files {
        let is_schema = file.rel_str() == schema_file;
        let limit = file.non_test_line_count();
        for (idx, raw) in file.src.lines().enumerate() {
            let code = code_of(raw);
            // A mention in a test file or a #[cfg(test)] region asserts;
            // a mention in runtime code emits. The schema file's own
            // declaration lines count as neither.
            let on_test_side = file.is_test_file() || idx >= limit;
            for (name, slot) in cov.iter_mut() {
                let pat = format!("::{name}");
                if mentions(&code, &pat, name) {
                    if is_schema && !on_test_side && is_declaration_context(&code, name) {
                        continue;
                    }
                    if on_test_side {
                        slot.1 = true;
                    } else {
                        slot.0 = true;
                    }
                }
            }
            if on_test_side {
                for (helper, covered) in ASSERT_HELPERS {
                    if code.contains(helper) {
                        for name in *covered {
                            if let Some(slot) = cov.get_mut(name) {
                                slot.1 = true;
                            }
                        }
                    }
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (name, decl_line) in &variants {
        let (emitted, asserted) = cov[name.as_str()];
        let mut push = |rule: &'static str| {
            findings.push(Finding {
                file: std::path::PathBuf::from(&schema_file),
                line: *decl_line,
                rule,
                excerpt: name.clone(),
            });
        };
        if !emitted {
            push("trace-kind-unemitted");
        }
        if !asserted {
            push("trace-kind-unasserted");
        }
    }
    findings
}

/// Finds the file declaring `enum TraceEventKind` and its variant names
/// with declaration line numbers.
fn find_variants(ws: &Workspace) -> Option<(String, Vec<(String, usize)>)> {
    for file in &ws.files {
        if let Some(variants) = parse_enum_variants(&file.src, "TraceEventKind") {
            return Some((file.rel_str().to_string(), variants));
        }
    }
    None
}

/// Parses the variants of `enum NAME { .. }` from source. Returns None
/// when the enum is not declared in this source.
pub fn parse_enum_variants(src: &str, name: &str) -> Option<Vec<(String, usize)>> {
    let header = format!("enum {name}");
    let mut in_body = false;
    let mut depth = 0i32;
    let mut variants = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let code = code_of(raw);
        if !in_body {
            if code.contains(&header) && code.contains('{') {
                in_body = true;
                depth = 1;
            }
            continue;
        }
        // Track nesting: struct-variant payloads `Foo { a: u32 },` nest.
        let trimmed = code.trim();
        if depth == 1 {
            let ident: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push((ident, idx + 1));
            }
        }
        for c in trimmed.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(variants);
                    }
                }
                _ => {}
            }
        }
    }
    if in_body {
        Some(variants)
    } else {
        None
    }
}

/// Whether `code` names the variant as `...::Name` with a word boundary
/// after it.
fn mentions(code: &str, pat: &str, name: &str) -> bool {
    let mut search = 0usize;
    while let Some(pos) = code[search..].find(pat) {
        let at = search + pos;
        let end = at + 2 + name.len();
        let after_ok = end >= code.len() || {
            let b = code.as_bytes()[end];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        if after_ok {
            return true;
        }
        search = at + pat.len();
    }
    false
}

/// Inside the schema file, lines like `TraceEventKind::Foo => "foo"` in
/// Display impls or `kind: TraceEventKind::Foo` in constructors are
/// runtime *plumbing*, not emission. Heuristic: a match arm mapping the
/// variant to a string (`=>`) in the schema file is declaration context.
fn is_declaration_context(code: &str, _name: &str) -> bool {
    code.contains("=>")
}
