//! **hash-iteration** — the determinism pass.
//!
//! Iterating a `HashMap`/`HashSet` yields a different order every process
//! (SipHash with a random seed). On trace-emission, signature, and GCS
//! flush/replay paths that order leaks into observable output and
//! silently threatens the same-seed trace-signature guarantee (PR 3) and
//! byte-stable flush/replay (PR 4). On those paths iteration must go
//! through `BTreeMap`/`BTreeSet` or an explicit sort; order-independent
//! folds (sums, counts) get an allowlist budget with a reason instead.
//!
//! Detection: collect every identifier declared or constructed as a
//! `HashMap`/`HashSet` in the file (let bindings, struct fields, typed
//! params), then flag iteration-shaped uses — `.iter()`, `.keys()`,
//! `.values()`, `.drain(..)`, `.retain(..)`, `.into_iter()`, and
//! `for .. in` — whose receiver chain passes through one of them. Point
//! lookups (`get`, `insert`, `remove`, `contains_key`) stay legal:
//! they are order-independent.

use std::collections::BTreeSet;

use crate::findings::Finding;
use crate::walker::{code_of, ident_chain_before, SourceFile, Workspace};

use super::{AnalyzeCtx, Pass};

/// Files on a determinism-sensitive path: trace emission + signature,
/// Chrome export, GCS flush/replay/recovery, and the consistency checker
/// whose violation reports feed test output.
pub const DETERMINISM_PATH_FILES: &[&str] = &[
    "crates/common/src/trace.rs",
    "crates/common/src/metrics.rs",
    "crates/gcs/src/flush.rs",
    "crates/gcs/src/kv.rs",
    "crates/gcs/src/tables.rs",
    "crates/gcs/src/replica.rs",
    "crates/gcs/src/chain.rs",
    "crates/gcs/src/check.rs",
];

const ITERATION_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

pub struct Determinism;

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["hash-iteration"]
    }

    fn run(&self, ctx: &AnalyzeCtx, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if !ctx.in_scope(file, DETERMINISM_PATH_FILES) {
                continue;
            }
            findings.extend(check_file(file));
        }
        findings
    }
}

/// Flags hash-iteration sites in one file (non-test region).
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let bindings: BTreeSet<String> = hash_bindings(&file.src);
    if bindings.is_empty() {
        return Vec::new();
    }
    let limit = file.non_test_line_count();
    let mut findings = Vec::new();
    for (idx, raw) in file.src.lines().enumerate() {
        if idx >= limit {
            break;
        }
        let code = code_of(raw);
        let flag = |findings: &mut Vec<Finding>| {
            findings.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: "hash-iteration",
                excerpt: raw.trim().to_string(),
            });
        };

        let mut flagged = false;
        for pat in ITERATION_METHODS {
            let mut search = 0usize;
            while let Some(pos) = code[search..].find(pat) {
                let at = search + pos;
                // End of the receiver chain: just before the method name.
                let method_end = at + pat.trim_end_matches(['(', ')']).len();
                let chain = ident_chain_before(&code, method_end.min(code.len()));
                // Last element is the method itself; any earlier element
                // naming a hash collection flags the line.
                if chain.len() >= 2
                    && chain[..chain.len() - 1].iter().any(|id| bindings.contains(id))
                {
                    flag(&mut findings);
                    flagged = true;
                    break;
                }
                search = at + pat.len();
            }
            if flagged {
                break;
            }
        }
        if flagged {
            continue;
        }

        // `for x in expr` / `for x in &expr`: flag when the iterated
        // expression names a hash collection.
        if let Some(pos) = find_word(&code, "for") {
            // ` in ` carries its own word boundaries (the spaces).
            if let Some(in_pos) = code[pos..].find(" in ") {
                let expr = &code[pos + in_pos + 4..];
                let expr = expr.split('{').next().unwrap_or(expr);
                for token in expr
                    .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                    .filter(|t| !t.is_empty())
                {
                    if bindings.contains(token) {
                        flag(&mut findings);
                        break;
                    }
                }
            }
        }
    }
    findings
}

/// Identifiers declared or constructed as `HashMap`/`HashSet` in this
/// file: `let NAME = HashMap::new()`, `NAME: HashMap<..>` (fields,
/// params, typed lets), `NAME = HashMap::with_capacity(..)`.
fn hash_bindings(src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for raw in src.lines() {
        let code = code_of(raw);
        for marker in ["HashMap", "HashSet"] {
            let mut search = 0usize;
            while let Some(pos) = code[search..].find(marker) {
                let at = search + pos;
                search = at + marker.len();
                // Identifier boundary on the left (skip e.g. `MyHashMap`
                // and `use std::collections::HashMap;` handled below).
                let before = code[..at].chars().next_back();
                if before.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                    continue;
                }
                if let Some(name) = name_from_decl_prefix(&code[..at]) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

/// The declared name a `HashMap`-mentioning line binds: the identifier
/// before a trailing `:` (struct field, fn param, typed let) or between
/// `let [mut]` and `=` (inferred let with a `HashMap::new()` initializer).
fn name_from_decl_prefix(prefix: &str) -> Option<String> {
    let mut trimmed = prefix.trim_end();
    // Strip reference/mutability noise so `NAME: &mut HashMap<..>` params
    // still register NAME.
    loop {
        if let Some(rest) = trimmed.strip_suffix('&') {
            trimmed = rest.trim_end();
            continue;
        }
        if let Some(rest) = trimmed.strip_suffix("mut") {
            if rest.is_empty() || rest.ends_with([' ', '&', '(', ',']) {
                trimmed = rest.trim_end();
                continue;
            }
        }
        break;
    }
    // `NAME: HashMap<..>` — field, param, or typed binding.
    if let Some(rest) = trimmed.strip_suffix(':') {
        let name = last_ident(rest)?;
        return Some(name);
    }
    // `let [mut] NAME = HashMap::new()` / `NAME = HashMap::with_capacity(..)`.
    if let Some(rest) = trimmed.strip_suffix('=') {
        let name = last_ident(rest)?;
        if name != "=" {
            return Some(name);
        }
    }
    None
}

/// The trailing identifier of `s`, if `s` ends with one.
fn last_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let ident = &s[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident.to_string())
}

fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack.as_bytes()[at - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[at - 1] != b'_';
        let end = at + needle.len();
        let after_ok = end >= haystack.len()
            || !haystack.as_bytes()[end].is_ascii_alphanumeric()
                && haystack.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + needle.len();
    }
    None
}
