//! The pass framework: one trait, one context, one registry of passes.
//!
//! A pass sees the whole read-once [`Workspace`] and returns findings; a
//! pass that only cares about single files just loops. Path-scoped passes
//! (wall-clock, determinism, panic-freedom) consult their scope lists
//! through [`AnalyzeCtx::in_scope`], which explicit-file runs (fixture
//! self-tests) override so every given file is in scope for every rule.
//!
//! Adding a rule (see DESIGN.md §13): write a module with a type
//! implementing [`Pass`], add it to [`all_passes`], give it a fixture
//! with one seeded violation in `xtask/tests/fixtures/`, and extend the
//! fixture self-test.

pub mod determinism;
pub mod lock_order;
pub mod locks;
pub mod panic_free;
pub mod sleep_poll;
pub mod trace_coverage;
pub mod wall_clock;

use crate::findings::Finding;
use crate::registry::ClassRegistry;
use crate::walker::{SourceFile, Workspace};

/// Shared, read-only context handed to every pass.
pub struct AnalyzeCtx {
    /// The central lock-class rank registry (from `sync.rs`).
    pub registry: ClassRegistry,
    /// DESIGN.md contents, when present (rank-table drift check).
    pub design_md: Option<String>,
    /// Explicit-file mode: path scope lists are ignored and every file is
    /// in scope for every path-scoped rule (fixture self-tests).
    pub all_files_in_scope: bool,
}

impl AnalyzeCtx {
    /// Whether `file` is within `paths` scope for a path-scoped pass.
    pub fn in_scope(&self, file: &SourceFile, paths: &[&str]) -> bool {
        if self.all_files_in_scope {
            return true;
        }
        let rel = file.rel_str();
        paths.iter().any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
    }
}

/// One analysis pass.
pub trait Pass {
    /// Short machine name, e.g. `lock-order`.
    fn name(&self) -> &'static str;
    /// The rule identifiers this pass can emit.
    fn rules(&self) -> &'static [&'static str];
    /// Runs over the whole workspace.
    fn run(&self, ctx: &AnalyzeCtx, ws: &Workspace) -> Vec<Finding>;
}

/// Every pass, in reporting order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(locks::LockDiscipline),
        Box::new(wall_clock::WallClock),
        Box::new(lock_order::LockOrder),
        Box::new(determinism::Determinism),
        Box::new(panic_free::PanicFree),
        Box::new(sleep_poll::SleepPoll),
        Box::new(trace_coverage::TraceCoverage),
    ]
}
