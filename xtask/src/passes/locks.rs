//! Lock-discipline rules migrated from the original single-purpose lint:
//!
//! 1. **raw-lock** — any mention of `parking_lot` or of
//!    `std::sync::{Mutex, RwLock, Condvar}` outside the one file allowed
//!    to touch them, `crates/common/src/sync.rs`.
//! 2. **guard-unwrap** — `.lock().unwrap()`, `.read().unwrap()`,
//!    `.write().unwrap()`: a tell-tale sign of a raw `std::sync` lock.
//! 3. **unregistered-class** — `OrderedMutex::new` / `OrderedRwLock::new`
//!    whose first argument is not a registered `LockClass`.

use std::collections::BTreeSet;
use std::path::Path;

use crate::findings::Finding;
use crate::registry::{collect_lock_class_names, ClassRegistry};
use crate::walker::{has_word, strip_line_comment, Workspace};

use super::{AnalyzeCtx, Pass};

/// The one file allowed to name the raw primitives (it wraps them).
pub const RAW_LOCK_WRAPPER: &str = "crates/common/src/sync.rs";

pub struct LockDiscipline;

impl Pass for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["raw-lock", "guard-unwrap", "unregistered-class"]
    }

    fn run(&self, ctx: &AnalyzeCtx, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            let allow_raw = file.rel_str() == RAW_LOCK_WRAPPER;
            findings.extend(lint_source(&file.rel, &file.src, &ctx.registry, allow_raw));
        }
        findings
    }
}

/// Lints one file's contents. `allow_raw` is true only for
/// `crates/common/src/sync.rs`, which wraps the raw primitives.
pub fn lint_source(
    path: &Path,
    src: &str,
    registry: &ClassRegistry,
    allow_raw: bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let local_classes = collect_lock_class_names(src);
    let lines: Vec<&str> = src.lines().collect();

    for (idx, raw_line) in lines.iter().enumerate() {
        let line = strip_line_comment(raw_line);
        let lineno = idx + 1;
        let push = |findings: &mut Vec<Finding>, rule| {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: lineno,
                rule,
                excerpt: raw_line.trim().to_string(),
            });
        };

        if !allow_raw {
            if line.contains("parking_lot") {
                push(&mut findings, "raw-lock");
            }
            let qualified_std_lock = line.contains("std::sync::Mutex")
                || line.contains("std::sync::RwLock")
                || line.contains("std::sync::Condvar");
            let imported_std_lock = line.contains("use std::sync::")
                && (has_word(line, "Mutex")
                    || has_word(line, "RwLock")
                    || has_word(line, "Condvar"));
            if qualified_std_lock || imported_std_lock {
                push(&mut findings, "raw-lock");
            }

            for pat in [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"] {
                if line.contains(pat) {
                    push(&mut findings, "guard-unwrap");
                }
            }
        }

        for ctor in ["OrderedMutex::new(", "OrderedRwLock::new("] {
            let mut search = 0;
            while let Some(pos) = line[search..].find(ctor) {
                let open = search + pos + ctor.len();
                let first_arg = first_argument(&lines, idx, open);
                if !argument_is_registered(&first_arg, registry, &local_classes) {
                    push(&mut findings, "unregistered-class");
                }
                search = open;
            }
        }
    }
    findings
}

/// Collects the first argument of a call whose opening paren sits at byte
/// `open` of line `line_idx`, joining up to a handful of following lines if
/// the argument list wraps.
pub fn first_argument(lines: &[&str], line_idx: usize, open: usize) -> String {
    let mut arg = String::new();
    let mut depth = 0usize;
    let mut first = true;
    for l in lines.iter().skip(line_idx).take(6) {
        let text = if first {
            first = false;
            strip_line_comment(l).get(open..).unwrap_or("")
        } else {
            strip_line_comment(l)
        };
        for c in text.chars() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        return arg;
                    }
                    depth -= 1;
                }
                ',' if depth == 0 => return arg,
                _ => {}
            }
            arg.push(c);
        }
        arg.push(' ');
    }
    arg
}

/// A first argument is legal when it is `&<path-to->classes::NAME` with
/// NAME in the central rank table, or `&NAME` with NAME declared as a
/// `static NAME: LockClass` in the same file.
fn argument_is_registered(
    arg: &str,
    registry: &ClassRegistry,
    local: &BTreeSet<String>,
) -> bool {
    let arg = arg.trim();
    let Some(path) = arg.strip_prefix('&') else { return false };
    let path = path.trim();
    let segments: Vec<&str> = path.split("::").map(str::trim).collect();
    let Some(name) = segments.last() else { return false };
    if segments.len() >= 2 && segments[segments.len() - 2] == "classes" {
        registry.contains(name)
    } else if segments.len() == 1 {
        local.contains(*name) || registry.contains(name)
    } else {
        false
    }
}
