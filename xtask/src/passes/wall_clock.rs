//! **wall-clock-emission** — trace-emission-path files may not call
//! `Instant::now()` directly; every time read goes through
//! `ray_common::trace::Clock` (the single lint-audited seam) so trace
//! timestamps stay virtualizable.

use std::path::Path;

use crate::findings::Finding;
use crate::walker::{strip_line_comment, Workspace};

use super::{AnalyzeCtx, Pass};

/// Files on the trace emission path.
pub const EMISSION_PATH_FILES: &[&str] = &[
    "crates/core/src/context.rs",
    "crates/core/src/worker.rs",
    "crates/core/src/node.rs",
    "crates/core/src/lineage.rs",
    "crates/core/src/failure.rs",
    "crates/core/src/global_loop.rs",
    "crates/object-store/src/transfer.rs",
    "crates/object-store/src/store.rs",
    "crates/gcs/src/chain.rs",
];

pub struct WallClock;

impl Pass for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["wall-clock-emission"]
    }

    fn run(&self, ctx: &AnalyzeCtx, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if file.is_test_file() && !ctx.all_files_in_scope {
                continue;
            }
            if ctx.in_scope(file, EMISSION_PATH_FILES) {
                findings.extend(lint_wall_clock(&file.rel, &file.src));
            }
        }
        findings
    }
}

/// Flags direct `Instant::now(` calls in an emission-path file. Test
/// modules are exempt (tests may measure real time); they sit at the
/// bottom of these files behind `#[cfg(test)]`, so scanning stops there.
pub fn lint_wall_clock(path: &Path, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw_line) in src.lines().enumerate() {
        let line = strip_line_comment(raw_line);
        if line.contains("#[cfg(test)]") || line.trim_start().starts_with("mod tests") {
            break;
        }
        if line.contains("Instant::now(") {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: idx + 1,
                rule: "wall-clock-emission",
                excerpt: raw_line.trim().to_string(),
            });
        }
    }
    findings
}
