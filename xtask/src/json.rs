//! trace-check: Chrome `trace_event` JSON validation, plus the minimal
//! hand-rolled JSON parser it rides on (std only — the gate has to build
//! offline).

use std::collections::BTreeMap;

/// A minimal JSON value — just enough to validate a Chrome trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> JsonParser<'a> {
        JsonParser { bytes: src.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates render as the replacement char;
                            // fine for validation purposes.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = JsonParser::new(src);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

/// Validates a Chrome `trace_event` JSON document: it must parse, hold a
/// `traceEvents` array of event objects, and (when `expect_nodes` is set)
/// contain at least one complete (`"ph":"X"`) span for each of pids
/// `0..expect_nodes`. Returns the per-pid complete-span counts.
pub fn trace_check(
    src: &str,
    expect_nodes: Option<usize>,
) -> Result<BTreeMap<u64, usize>, String> {
    let root = parse_json(src)?;
    let events = match root.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("missing 'traceEvents' array".into()),
    };
    let mut spans_per_pid: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let (Some(Json::Str(ph)), Some(Json::Num(pid))) = (ev.get("ph"), ev.get("pid")) else {
            return Err(format!("event {i} lacks string 'ph' / numeric 'pid'"));
        };
        if ph == "X" {
            *spans_per_pid.entry(*pid as u64).or_default() += 1;
        }
    }
    if let Some(n) = expect_nodes {
        for pid in 0..n as u64 {
            if !spans_per_pid.contains_key(&pid) {
                return Err(format!(
                    "no complete ('X') span for node {pid}; spans per pid: {spans_per_pid:?}"
                ));
            }
        }
    }
    Ok(spans_per_pid)
}
