//! The finding model shared by every pass, plus JSON rendering for
//! machine-readable output (`analyze --json`).

use std::fmt;
use std::path::PathBuf;

/// One analyzer violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier, e.g. `raw-lock` or `lock-order-inversion`.
    pub rule: &'static str,
    /// The offending source line (or a synthesized description for
    /// workspace-level rules), trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one finding as a JSON object (no trailing separator).
pub fn finding_to_json(f: &Finding, allowed: bool) -> String {
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"allowed\":{},\"excerpt\":\"{}\"}}",
        json_escape(&f.file.to_string_lossy().replace('\\', "/")),
        f.line,
        json_escape(f.rule),
        allowed,
        json_escape(&f.excerpt),
    )
}
