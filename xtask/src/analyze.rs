//! The `analyze` orchestrator: one workspace read, every pass, one
//! allowlist application, one report.

use std::path::{Path, PathBuf};

use crate::allowlist::{Allowlist, Applied};
use crate::findings::{finding_to_json, json_escape, Finding};
use crate::passes::{all_passes, AnalyzeCtx};
use crate::registry::ClassRegistry;
use crate::walker::Workspace;

/// Workspace-relative path of the allowlist / ratchet file.
pub const ALLOWLIST_PATH: &str = "xtask/analyze.allow";

/// Result of a full analyze run.
pub struct AnalyzeReport {
    pub files_scanned: usize,
    pub passes_run: usize,
    /// Findings admitted by the allowlist (within budget).
    pub allowed: Vec<Finding>,
    /// Findings that fail the gate.
    pub denied: Vec<Finding>,
    /// Human-readable over-budget group summaries (these groups' findings
    /// are all in `denied`).
    pub over_budget: Vec<String>,
    /// Stale-budget notes (non-fatal; `--update-ratchet` clears them).
    pub stale: Vec<String>,
    /// Every raw finding, pre-allowlist (ratchet rewriting needs this).
    pub all_findings: Vec<Finding>,
}

impl AnalyzeReport {
    pub fn is_clean(&self) -> bool {
        self.denied.is_empty()
    }
}

/// Runs every pass over the workspace rooted at `root` and applies the
/// allowlist ratchet.
pub fn run_analyze(root: &Path) -> std::io::Result<AnalyzeReport> {
    let ws = Workspace::load(root)?;
    let ctx = load_ctx(root, &ws, false)?;
    let allowlist = Allowlist::load(&root.join(ALLOWLIST_PATH)).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    })?;
    Ok(run_passes(&ctx, &ws, &allowlist))
}

/// Analyzes explicitly named files: every file is in scope for every
/// path-scoped rule and no allowlist applies (fixture self-tests, ad-hoc
/// checks of files outside the default walk).
pub fn run_analyze_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<AnalyzeReport> {
    let ws = Workspace::load_paths(root, paths)?;
    let ctx = load_ctx(root, &ws, true)?;
    Ok(run_passes(&ctx, &ws, &Allowlist::default()))
}

/// Builds the shared pass context. The lock-class registry comes from the
/// workspace's own copy of `sync.rs` when it was walked, falling back to
/// reading it from disk (explicit-file runs still need the real ranks).
fn load_ctx(root: &Path, ws: &Workspace, all_files_in_scope: bool) -> std::io::Result<AnalyzeCtx> {
    let sync_src = match ws.files.iter().find(|f| f.rel_str() == "crates/common/src/sync.rs") {
        Some(f) => f.src.clone(),
        None => std::fs::read_to_string(root.join("crates/common/src/sync.rs"))?,
    };
    let design_md = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    Ok(AnalyzeCtx {
        registry: ClassRegistry::from_sync_source(&sync_src),
        design_md,
        all_files_in_scope,
    })
}

/// Runs all passes and applies the allowlist.
pub fn run_passes(ctx: &AnalyzeCtx, ws: &Workspace, allowlist: &Allowlist) -> AnalyzeReport {
    let passes = all_passes();
    let passes_run = passes.len();
    let mut all_findings = Vec::new();
    for pass in &passes {
        all_findings.extend(pass.run(ctx, ws));
    }
    let Applied { allowed, denied, over_budget, stale } = allowlist.apply(all_findings.clone());
    AnalyzeReport {
        files_scanned: ws.files.len(),
        passes_run,
        allowed,
        denied,
        over_budget,
        stale,
        all_findings,
    }
}

/// Rewrites the allowlist at `root` so budgets equal actual counts
/// (`analyze --update-ratchet`). Returns the number of budget lines after
/// the rewrite.
pub fn update_ratchet(root: &Path, report: &AnalyzeReport) -> std::io::Result<usize> {
    let path = root.join(ALLOWLIST_PATH);
    let original = std::fs::read_to_string(&path).unwrap_or_default();
    let allowlist = Allowlist::parse(&original).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    })?;
    let rewritten = allowlist.rewritten(&original, &report.all_findings);
    std::fs::write(&path, &rewritten)?;
    let remaining = Allowlist::parse(&rewritten)
        .map(|a| a.budgets.len())
        .unwrap_or(0);
    Ok(remaining)
}

/// Renders the report for humans. Returns the process exit code.
pub fn render_text(report: &AnalyzeReport) -> (String, i32) {
    let mut out = String::new();
    for f in &report.denied {
        out.push_str(&format!("{f}\n"));
    }
    for note in &report.over_budget {
        out.push_str(&format!("over budget: {note}\n"));
    }
    for note in &report.stale {
        out.push_str(&format!("stale budget: {note}\n"));
    }
    let status = if report.is_clean() { "ok" } else { "FAIL" };
    out.push_str(&format!(
        "analyze: {status} — {} file(s), {} pass(es), {} finding(s) ({} allowed, {} denied)\n",
        report.files_scanned,
        report.passes_run,
        report.all_findings.len(),
        report.allowed.len(),
        report.denied.len(),
    ));
    (out, if report.is_clean() { 0 } else { 1 })
}

/// Renders the report as one JSON document (`analyze --json`).
pub fn render_json(report: &AnalyzeReport) -> String {
    let mut findings = Vec::new();
    for f in &report.allowed {
        findings.push(finding_to_json(f, true));
    }
    for f in &report.denied {
        findings.push(finding_to_json(f, false));
    }
    let notes: Vec<String> = report
        .over_budget
        .iter()
        .chain(report.stale.iter())
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    format!(
        "{{\"ok\":{},\"files_scanned\":{},\"passes_run\":{},\"findings\":[{}],\"notes\":[{}]}}",
        report.is_clean(),
        report.files_scanned,
        report.passes_run,
        findings.join(","),
        notes.join(","),
    )
}
