//! The `LockClass` rank registry, parsed from `crates/common/src/sync.rs`
//! (the single source of truth) and, for drift checking, from the
//! DESIGN.md §9 rank table.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::walker::strip_line_comment;

/// The set of `LockClass` names a construction may legally reference,
/// with their numeric ranks where statically parseable.
#[derive(Debug, Default, Clone)]
pub struct ClassRegistry {
    /// Class ident → rank. Rank is `None` when the declaration's rank
    /// argument was not a literal.
    central: BTreeMap<String, Option<u32>>,
}

impl ClassRegistry {
    /// Builds the registry from the rank-table source (`sync.rs`). Only
    /// the non-test region counts: classes declared under `#[cfg(test)]`
    /// are test-local, not part of the central table (and not held
    /// against the DESIGN.md §9 drift check).
    pub fn from_sync_source(sync_src: &str) -> ClassRegistry {
        let non_test = match sync_src.find("#[cfg(test)]") {
            Some(pos) => &sync_src[..pos],
            None => sync_src,
        };
        ClassRegistry { central: collect_lock_class_statics(non_test) }
    }

    pub fn contains(&self, name: &str) -> bool {
        self.central.contains_key(name)
    }

    /// The rank of a centrally registered class, when known.
    pub fn rank(&self, name: &str) -> Option<u32> {
        self.central.get(name).copied().flatten()
    }

    /// Every `(class ident, rank)` pair, sorted by ident.
    pub fn entries(&self) -> impl Iterator<Item = (&str, Option<u32>)> {
        self.central.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of centrally registered classes (for the summary line).
    pub fn len(&self) -> usize {
        self.central.len()
    }

    pub fn is_empty(&self) -> bool {
        self.central.is_empty()
    }
}

/// Extracts `static NAME: LockClass = LockClass::new("...", RANK)`
/// declarations (with or without `pub`) from one source file. Returns
/// ident → rank (rank `None` if not a literal).
pub fn collect_lock_class_statics(src: &str) -> BTreeMap<String, Option<u32>> {
    let mut out = BTreeMap::new();
    for line in src.lines() {
        let line = strip_line_comment(line).trim().to_string();
        let rest = line
            .strip_prefix("pub static ")
            .or_else(|| line.strip_prefix("static "));
        if let Some(rest) = rest {
            if let Some((name, ty)) = rest.split_once(':') {
                if ty.trim_start().starts_with("LockClass") {
                    out.insert(name.trim().to_string(), parse_rank(ty));
                }
            }
        }
    }
    out
}

/// The names only (legacy helper for file-local class collection).
pub fn collect_lock_class_names(src: &str) -> BTreeSet<String> {
    collect_lock_class_statics(src).into_keys().collect()
}

/// Pulls the literal rank out of `LockClass = LockClass::new("name", 300);`.
fn parse_rank(decl_rhs: &str) -> Option<u32> {
    let args = decl_rhs.split_once("LockClass::new(")?.1;
    let second = args.split(',').nth(1)?;
    second.trim().trim_end_matches([')', ';']).trim().parse().ok()
}

/// One row of the DESIGN.md §9 rank table: `| 300 | `STORE_MAP` | ... |`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignRankRow {
    pub rank: u32,
    pub class: String,
    /// 1-based line in DESIGN.md.
    pub line: usize,
}

/// Parses the DESIGN.md §9 rank table rows (any markdown table whose
/// first cell is a number and second cell a backticked UPPER_SNAKE ident).
pub fn parse_design_rank_table(design_md: &str) -> Vec<DesignRankRow> {
    let mut rows = Vec::new();
    for (idx, line) in design_md.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let Ok(rank) = cells[0].parse::<u32>() else { continue };
        let class = cells[1].trim_matches('`');
        if !class.is_empty()
            && class
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        {
            rows.push(DesignRankRow { rank, class: class.to_string(), line: idx + 1 });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_parse_from_sync_source() {
        let reg = ClassRegistry::from_sync_source(
            "pub static STORE_MAP: LockClass = LockClass::new(\"object_store.map\", 300);\n\
             static LOCAL: LockClass = LockClass::new(\"t.local\", 1);\n",
        );
        assert_eq!(reg.rank("STORE_MAP"), Some(300));
        assert_eq!(reg.rank("LOCAL"), Some(1));
        assert!(reg.contains("STORE_MAP"));
        assert!(!reg.contains("NOPE"));
    }

    #[test]
    fn design_table_rows_parse() {
        let md = "| Rank | Class |\n|---:|---|\n| 100 | `CLUSTER_TOPOLOGY` | x |\n\
                  | 300 | `STORE_MAP` | y |\nnot a row\n";
        let rows = parse_design_rank_table(md);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].class, "CLUSTER_TOPOLOGY");
        assert_eq!(rows[0].rank, 100);
        assert_eq!(rows[1].rank, 300);
    }
}
