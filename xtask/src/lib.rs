//! Lock-discipline lint: the static half of the ranked-lock enforcement
//! story (`ray_common::sync` is the dynamic half).
//!
//! The lint walks the workspace's Rust sources and rejects:
//!
//! 1. **Raw lock imports/uses** — any mention of `parking_lot` or of
//!    `std::sync::{Mutex, RwLock, Condvar}` outside the one file allowed to
//!    touch them, `crates/common/src/sync.rs`. Everything else must go
//!    through [`OrderedMutex`]/[`OrderedRwLock`]/[`OrderedCondvar`], whose
//!    rank checks only work if nobody side-steps them.
//! 2. **Poisoning-style guard handling** — `.lock().unwrap()`,
//!    `.read().unwrap()`, `.write().unwrap()`: a tell-tale sign of a raw
//!    `std::sync` lock having snuck in.
//! 3. **Unregistered lock constructions** — `OrderedMutex::new(..)` /
//!    `OrderedRwLock::new(..)` whose first argument is not a registered
//!    `LockClass`: either a `&classes::NAME` from the central rank table or
//!    a `static NAME: LockClass` declared in the same file (test-local
//!    classes).
//!
//! Scanning is line-oriented and intentionally dumb — no syn, no regex
//! crate, std only — because the gate has to build offline. Line comments
//! are stripped before matching so prose about `parking_lot` stays legal.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier, e.g. `raw-lock`.
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt
        )
    }
}

/// The set of `LockClass` names a construction may legally reference.
#[derive(Debug, Default, Clone)]
pub struct ClassRegistry {
    central: BTreeSet<String>,
}

impl ClassRegistry {
    /// Builds the registry from the rank-table source (`sync.rs`).
    pub fn from_sync_source(sync_src: &str) -> ClassRegistry {
        ClassRegistry { central: collect_lock_class_statics(sync_src) }
    }

    fn contains(&self, name: &str) -> bool {
        self.central.contains(name)
    }

    /// Number of centrally registered classes (for the summary line).
    pub fn len(&self) -> usize {
        self.central.len()
    }

    pub fn is_empty(&self) -> bool {
        self.central.is_empty()
    }
}

/// Extracts identifiers declared as `static NAME: LockClass = ...`
/// (with or without `pub`) from one source file.
fn collect_lock_class_statics(src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let line = strip_line_comment(line).trim().to_string();
        let rest = line
            .strip_prefix("pub static ")
            .or_else(|| line.strip_prefix("static "));
        if let Some(rest) = rest {
            if let Some((name, ty)) = rest.split_once(':') {
                if ty.trim_start().starts_with("LockClass") {
                    out.insert(name.trim().to_string());
                }
            }
        }
    }
    out
}

/// Drops a `//` line comment. Keeps `//` that appears inside a string
/// literal out of scope by only cutting at a `//` with an even number of
/// unescaped quotes before it — good enough for this codebase.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn has_word(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack.as_bytes()[at - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[at - 1] != b'_';
        let end = at + word.len();
        let after_ok = end >= haystack.len()
            || !haystack.as_bytes()[end].is_ascii_alphanumeric()
                && haystack.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Lints one file's contents. `allow_raw` is true only for
/// `crates/common/src/sync.rs`, which wraps the raw primitives.
pub fn lint_source(
    path: &Path,
    src: &str,
    registry: &ClassRegistry,
    allow_raw: bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let local_classes = collect_lock_class_statics(src);
    let lines: Vec<&str> = src.lines().collect();

    for (idx, raw_line) in lines.iter().enumerate() {
        let line = strip_line_comment(raw_line);
        let lineno = idx + 1;
        let push = |findings: &mut Vec<Finding>, rule| {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: lineno,
                rule,
                excerpt: raw_line.trim().to_string(),
            });
        };

        if !allow_raw {
            if line.contains("parking_lot") {
                push(&mut findings, "raw-lock");
            }
            let qualified_std_lock = line.contains("std::sync::Mutex")
                || line.contains("std::sync::RwLock")
                || line.contains("std::sync::Condvar");
            let imported_std_lock = line.contains("use std::sync::")
                && (has_word(line, "Mutex")
                    || has_word(line, "RwLock")
                    || has_word(line, "Condvar"));
            if qualified_std_lock || imported_std_lock {
                push(&mut findings, "raw-lock");
            }

            for pat in [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"] {
                if line.contains(pat) {
                    push(&mut findings, "guard-unwrap");
                }
            }
        }

        for ctor in ["OrderedMutex::new(", "OrderedRwLock::new("] {
            let mut search = 0;
            while let Some(pos) = line[search..].find(ctor) {
                let open = search + pos + ctor.len();
                let first_arg = first_argument(&lines, idx, open);
                if !argument_is_registered(&first_arg, registry, &local_classes) {
                    push(&mut findings, "unregistered-class");
                }
                search = open;
            }
        }
    }
    findings
}

/// Collects the first argument of a call whose opening paren sits at byte
/// `open` of line `line_idx`, joining up to a handful of following lines if
/// the argument list wraps.
fn first_argument(lines: &[&str], line_idx: usize, open: usize) -> String {
    let mut arg = String::new();
    let mut depth = 0usize;
    let mut first = true;
    for l in lines.iter().skip(line_idx).take(6) {
        let text = if first {
            first = false;
            strip_line_comment(l).get(open..).unwrap_or("")
        } else {
            strip_line_comment(l)
        };
        for c in text.chars() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        return arg;
                    }
                    depth -= 1;
                }
                ',' if depth == 0 => return arg,
                _ => {}
            }
            arg.push(c);
        }
        arg.push(' ');
    }
    arg
}

/// A first argument is legal when it is `&<path-to->classes::NAME` with
/// NAME in the central rank table, or `&NAME` with NAME declared as a
/// `static NAME: LockClass` in the same file.
fn argument_is_registered(
    arg: &str,
    registry: &ClassRegistry,
    local: &BTreeSet<String>,
) -> bool {
    let arg = arg.trim();
    let Some(path) = arg.strip_prefix('&') else { return false };
    let path = path.trim();
    let segments: Vec<&str> = path.split("::").map(str::trim).collect();
    let Some(name) = segments.last() else { return false };
    if segments.len() >= 2 && segments[segments.len() - 2] == "classes" {
        registry.contains(name)
    } else if segments.len() == 1 {
        local.contains(*name) || registry.contains(name)
    } else {
        false
    }
}

// ---------------------------------------------------------------------------
// Wall-clock emission lint
// ---------------------------------------------------------------------------

/// Files on the trace emission path. Every time read in these files must go
/// through `ray_common::trace::Clock` (the single lint-audited seam), so
/// trace timestamps stay virtualizable; a bare `Instant::now()` here would
/// silently decouple deadlines from the trace clock.
pub const EMISSION_PATH_FILES: &[&str] = &[
    "crates/core/src/context.rs",
    "crates/core/src/worker.rs",
    "crates/core/src/node.rs",
    "crates/core/src/lineage.rs",
    "crates/core/src/failure.rs",
    "crates/core/src/global_loop.rs",
    "crates/object-store/src/transfer.rs",
    "crates/object-store/src/store.rs",
    "crates/gcs/src/chain.rs",
];

/// Flags direct `Instant::now(` calls in an emission-path file. Test
/// modules are exempt (tests may measure real time); they sit at the
/// bottom of these files behind `#[cfg(test)]`, so scanning stops there.
pub fn lint_wall_clock(path: &Path, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw_line) in src.lines().enumerate() {
        let line = strip_line_comment(raw_line);
        if line.contains("#[cfg(test)]")
            || line.trim_start().starts_with("mod tests")
        {
            break;
        }
        if line.contains("Instant::now(") {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: idx + 1,
                rule: "wall-clock-emission",
                excerpt: raw_line.trim().to_string(),
            });
        }
    }
    findings
}

/// Recursively collects `.rs` files under `dir` into `out` (sorted).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of a full lint run.
pub struct LintReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

/// Lints the whole workspace rooted at `root`: `crates/`, plus the root
/// package's `src/`, `tests/`, and `examples/`. The wrapper module itself
/// (`crates/common/src/sync.rs`) is the one file allowed to use the raw
/// primitives. The lint fixtures under `xtask/tests/fixtures` are only
/// scanned when passed explicitly.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let sync_path = root.join("crates/common/src/sync.rs");
    let sync_src = std::fs::read_to_string(&sync_path)?;
    let registry = ClassRegistry::from_sync_source(&sync_src);

    let mut files = Vec::new();
    for sub in ["crates", "src", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }

    let mut findings = Vec::new();
    let files_scanned = files.len();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let allow_raw = file == &sync_path;
        let rel = file.strip_prefix(root).unwrap_or(file);
        findings.extend(lint_source(rel, &src, &registry, allow_raw));
        let rel_str = rel.to_string_lossy();
        if EMISSION_PATH_FILES.iter().any(|p| *p == rel_str) {
            findings.extend(lint_wall_clock(rel, &src));
        }
    }
    Ok(LintReport { files_scanned, findings })
}

/// Lints explicitly named files (no allowlist — used by the self-test and
/// for ad-hoc checks of files outside the default walk).
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<LintReport> {
    let sync_src = std::fs::read_to_string(root.join("crates/common/src/sync.rs"))?;
    let registry = ClassRegistry::from_sync_source(&sync_src);
    let mut findings = Vec::new();
    for file in paths {
        let src = std::fs::read_to_string(file)?;
        findings.extend(lint_source(file, &src, &registry, false));
    }
    Ok(LintReport { files_scanned: paths.len(), findings })
}

// ---------------------------------------------------------------------------
// trace-check: Chrome trace_event JSON validation
// ---------------------------------------------------------------------------

/// A minimal JSON value — just enough to validate a Chrome trace file.
/// Hand-rolled because the gate has to build offline (std only).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> JsonParser<'a> {
        JsonParser { bytes: src.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates render as the replacement char;
                            // fine for validation purposes.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = JsonParser::new(src);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

/// Validates a Chrome `trace_event` JSON document: it must parse, hold a
/// `traceEvents` array of event objects, and (when `expect_nodes` is set)
/// contain at least one complete (`"ph":"X"`) span for each of pids
/// `0..expect_nodes`. Returns the per-pid complete-span counts.
pub fn trace_check(
    src: &str,
    expect_nodes: Option<usize>,
) -> Result<BTreeMap<u64, usize>, String> {
    let root = parse_json(src)?;
    let events = match root.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("missing 'traceEvents' array".into()),
    };
    let mut spans_per_pid: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let (Some(Json::Str(ph)), Some(Json::Num(pid))) = (ev.get("ph"), ev.get("pid")) else {
            return Err(format!("event {i} lacks string 'ph' / numeric 'pid'"));
        };
        if ph == "X" {
            *spans_per_pid.entry(*pid as u64).or_default() += 1;
        }
    }
    if let Some(n) = expect_nodes {
        for pid in 0..n as u64 {
            if !spans_per_pid.contains_key(&pid) {
                return Err(format!(
                    "no complete ('X') span for node {pid}; spans per pid: {spans_per_pid:?}"
                ));
            }
        }
    }
    Ok(spans_per_pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ClassRegistry {
        ClassRegistry::from_sync_source(
            "pub static STORE_MAP: LockClass = LockClass::new(\"object_store.map\", 300);\n",
        )
    }

    #[test]
    fn raw_parking_lot_is_flagged() {
        let f = lint_source(Path::new("a.rs"), "use parking_lot::Mutex;\n", &reg(), false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-lock");
    }

    #[test]
    fn comments_about_parking_lot_are_fine() {
        let f = lint_source(
            Path::new("a.rs"),
            "// wraps parking_lot primitives\nlet x = 1;\n",
            &reg(),
            false,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn std_sync_lock_import_is_flagged() {
        let f = lint_source(
            Path::new("a.rs"),
            "use std::sync::{Arc, Mutex};\n",
            &reg(),
            false,
        );
        assert_eq!(f.len(), 1);
        // Arc alone stays legal.
        let ok = lint_source(Path::new("a.rs"), "use std::sync::Arc;\n", &reg(), false);
        assert!(ok.is_empty());
    }

    #[test]
    fn guard_unwrap_is_flagged() {
        let f = lint_source(
            Path::new("a.rs"),
            "let g = m.lock().unwrap();\n",
            &reg(),
            false,
        );
        assert_eq!(f[0].rule, "guard-unwrap");
    }

    #[test]
    fn registered_construction_passes() {
        let src = "let m = OrderedMutex::new(&classes::STORE_MAP, HashMap::new());\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
        let qualified =
            "let m = ray_common::sync::OrderedMutex::new(&ray_common::sync::classes::STORE_MAP, 0);\n";
        assert!(lint_source(Path::new("a.rs"), qualified, &reg(), false).is_empty());
    }

    #[test]
    fn unregistered_construction_is_flagged() {
        let src = "let m = OrderedMutex::new(&classes::NOT_A_CLASS, 0);\n";
        let f = lint_source(Path::new("a.rs"), src, &reg(), false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unregistered-class");
    }

    #[test]
    fn file_local_static_class_passes() {
        let src = "static T_LOCAL: LockClass = LockClass::new(\"t.local\", 1);\n\
                   let m = OrderedMutex::new(&T_LOCAL, ());\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
    }

    #[test]
    fn wall_clock_in_emission_path_is_flagged() {
        let src = "let deadline = Instant::now() + timeout;\n";
        let f = lint_wall_clock(Path::new("crates/core/src/node.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock-emission");
        // Clock reads pass.
        let ok = lint_wall_clock(Path::new("a.rs"), "let d = clock.now() + timeout;\n");
        assert!(ok.is_empty());
        // Test modules at the bottom of the file are exempt.
        let tested = "let d = clock.now();\n#[cfg(test)]\nmod tests {\n    \
                      fn t() { let x = Instant::now(); }\n}\n";
        assert!(lint_wall_clock(Path::new("a.rs"), tested).is_empty());
        // Comments don't count.
        assert!(lint_wall_clock(Path::new("a.rs"), "// not Instant::now()\n").is_empty());
    }

    #[test]
    fn trace_check_accepts_valid_trace() {
        let src = r#"{"traceEvents":[
            {"name":"f","cat":"task","ph":"X","ts":1,"dur":5,"pid":0,"tid":7,"args":{}},
            {"name":"g","cat":"task","ph":"X","ts":2,"dur":3,"pid":1,"tid":8,"args":{}},
            {"name":"submitted","cat":"lifecycle","ph":"i","ts":0,"pid":0,"tid":7,"s":"t"}
        ]}"#;
        let spans = trace_check(src, Some(2)).expect("valid trace");
        assert_eq!(spans.get(&0), Some(&1));
        assert_eq!(spans.get(&1), Some(&1));
    }

    #[test]
    fn trace_check_rejects_missing_node_span() {
        let src = r#"{"traceEvents":[
            {"name":"f","ph":"X","ts":1,"dur":5,"pid":0,"tid":7}
        ]}"#;
        let err = trace_check(src, Some(2)).unwrap_err();
        assert!(err.contains("node 1"), "got: {err}");
    }

    #[test]
    fn trace_check_rejects_malformed_json() {
        assert!(trace_check("{\"traceEvents\":[", None).is_err());
        assert!(trace_check("{\"traceEvents\":{}}", None).is_err());
        assert!(trace_check("{\"traceEvents\":[]} junk", None).is_err());
    }

    #[test]
    fn json_parser_handles_escapes_and_numbers() {
        let v = parse_json(r#"{"a":"q\"\nA","b":-1.5e2,"c":[true,false,null]}"#)
            .expect("parse");
        assert_eq!(v.get("a"), Some(&Json::Str("q\"\nA".to_string())));
        assert_eq!(v.get("b"), Some(&Json::Num(-150.0)));
        assert_eq!(
            v.get("c"),
            Some(&Json::Arr(vec![Json::Bool(true), Json::Bool(false), Json::Null]))
        );
    }

    #[test]
    fn multiline_construction_is_parsed() {
        let src = "let m = OrderedRwLock::new(\n    &classes::STORE_MAP,\n    Vec::new(),\n);\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
        let bad = "let m = OrderedRwLock::new(\n    &classes::BOGUS,\n    Vec::new(),\n);\n";
        let f = lint_source(Path::new("a.rs"), bad, &reg(), false);
        assert_eq!(f.len(), 1);
    }
}
