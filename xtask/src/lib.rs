//! Workspace static analysis: the static half of the repo's enforcement
//! story (`ray_common::sync`'s ranked locks and the trace-assertion suite
//! are the dynamic half).
//!
//! `cargo run -p xtask -- analyze` walks the workspace once and runs every
//! pass over the shared file set:
//!
//! * **lock-discipline** — raw `parking_lot`/`std::sync` lock use outside
//!   the wrapper, poisoning-style `.lock().unwrap()`, and
//!   `OrderedMutex::new` with an unregistered `LockClass`.
//! * **wall-clock** — `Instant::now()` on trace-emission paths (all time
//!   goes through the `Clock` seam).
//! * **lock-order** — static acquisition-order analysis: intra-function
//!   nested acquisitions become edges in a cross-workspace graph keyed by
//!   `LockClass` rank; rank inversions and cycles fail the gate, and the
//!   code's rank table is cross-checked against DESIGN.md §9.
//! * **determinism** — `HashMap`/`HashSet` iteration on trace, signature,
//!   and GCS flush/replay paths.
//! * **panic-free** — `unwrap()`/`expect()`/`panic!`/slice-indexing in
//!   non-test runtime code (burn-down via the allowlist ratchet).
//! * **sleep-poll** — `thread::sleep` inside loop bodies.
//! * **trace-coverage** — every `TraceEventKind` variant emitted in
//!   runtime code and asserted in some test.
//!
//! Scanning is line-oriented and intentionally dumb — no syn, no regex
//! crate, std only — because the gate has to build offline. Pre-existing
//! violations are budgeted in `xtask/analyze.allow` (a ratchet: budgets
//! only shrink; see `allowlist`). `lint` remains as an alias running the
//! migrated original rules.

pub mod allowlist;
pub mod analyze;
pub mod findings;
pub mod json;
pub mod passes;
pub mod registry;
pub mod walker;

use std::path::{Path, PathBuf};

use passes::Pass;

// Back-compat surface: the original single-purpose lint API, now thin
// wrappers over the pass framework. `xtask/tests/lint_gate.rs` and the
// verify script's `lint` subcommand ride on these.
pub use findings::Finding;
pub use json::{parse_json, trace_check, Json};
pub use passes::locks::lint_source;
pub use passes::wall_clock::{lint_wall_clock, EMISSION_PATH_FILES};
pub use registry::ClassRegistry;

pub use analyze::{
    render_json, render_text, run_analyze, run_analyze_paths, update_ratchet, AnalyzeReport,
    ALLOWLIST_PATH,
};

/// Result of a legacy lint run.
pub struct LintReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

/// Lints the whole workspace rooted at `root` with the migrated original
/// rules (lock discipline + wall clock). The full gate is [`run_analyze`];
/// this remains for the `lint` alias and its tests.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let ws = walker::Workspace::load(root)?;
    let sync_src = match ws.files.iter().find(|f| f.rel_str() == "crates/common/src/sync.rs") {
        Some(f) => f.src.clone(),
        None => std::fs::read_to_string(root.join("crates/common/src/sync.rs"))?,
    };
    let ctx = passes::AnalyzeCtx {
        registry: ClassRegistry::from_sync_source(&sync_src),
        design_md: None,
        all_files_in_scope: false,
    };
    let mut findings = passes::locks::LockDiscipline.run(&ctx, &ws);
    findings.extend(passes::wall_clock::WallClock.run(&ctx, &ws));
    Ok(LintReport { files_scanned: ws.files.len(), findings })
}

/// Lints explicitly named files with the lock-discipline rules (no
/// allowlist — used by the self-test and ad-hoc checks).
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<LintReport> {
    let sync_src = std::fs::read_to_string(root.join("crates/common/src/sync.rs"))?;
    let registry = ClassRegistry::from_sync_source(&sync_src);
    let mut findings = Vec::new();
    for file in paths {
        let src = std::fs::read_to_string(file)?;
        findings.extend(lint_source(file, &src, &registry, false));
    }
    Ok(LintReport { files_scanned: paths.len(), findings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ClassRegistry {
        ClassRegistry::from_sync_source(
            "pub static STORE_MAP: LockClass = LockClass::new(\"object_store.map\", 300);\n",
        )
    }

    #[test]
    fn raw_parking_lot_is_flagged() {
        let f = lint_source(Path::new("a.rs"), "use parking_lot::Mutex;\n", &reg(), false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-lock");
    }

    #[test]
    fn comments_about_parking_lot_are_fine() {
        let f = lint_source(
            Path::new("a.rs"),
            "// wraps parking_lot primitives\nlet x = 1;\n",
            &reg(),
            false,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn std_sync_lock_import_is_flagged() {
        let f = lint_source(
            Path::new("a.rs"),
            "use std::sync::{Arc, Mutex};\n",
            &reg(),
            false,
        );
        assert_eq!(f.len(), 1);
        // Arc alone stays legal.
        let ok = lint_source(Path::new("a.rs"), "use std::sync::Arc;\n", &reg(), false);
        assert!(ok.is_empty());
    }

    #[test]
    fn guard_unwrap_is_flagged() {
        let f = lint_source(
            Path::new("a.rs"),
            "let g = m.lock().unwrap();\n",
            &reg(),
            false,
        );
        assert_eq!(f[0].rule, "guard-unwrap");
    }

    #[test]
    fn registered_construction_passes() {
        let src = "let m = OrderedMutex::new(&classes::STORE_MAP, HashMap::new());\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
        let qualified =
            "let m = ray_common::sync::OrderedMutex::new(&ray_common::sync::classes::STORE_MAP, 0);\n";
        assert!(lint_source(Path::new("a.rs"), qualified, &reg(), false).is_empty());
    }

    #[test]
    fn unregistered_construction_is_flagged() {
        let src = "let m = OrderedMutex::new(&classes::NOT_A_CLASS, 0);\n";
        let f = lint_source(Path::new("a.rs"), src, &reg(), false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unregistered-class");
    }

    #[test]
    fn file_local_static_class_passes() {
        let src = "static T_LOCAL: LockClass = LockClass::new(\"t.local\", 1);\n\
                   let m = OrderedMutex::new(&T_LOCAL, ());\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
    }

    #[test]
    fn wall_clock_in_emission_path_is_flagged() {
        let src = "let deadline = Instant::now() + timeout;\n";
        let f = lint_wall_clock(Path::new("crates/core/src/node.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock-emission");
        // Clock reads pass.
        let ok = lint_wall_clock(Path::new("a.rs"), "let d = clock.now() + timeout;\n");
        assert!(ok.is_empty());
        // Test modules at the bottom of the file are exempt.
        let tested = "let d = clock.now();\n#[cfg(test)]\nmod tests {\n    \
                      fn t() { let x = Instant::now(); }\n}\n";
        assert!(lint_wall_clock(Path::new("a.rs"), tested).is_empty());
        // Comments don't count.
        assert!(lint_wall_clock(Path::new("a.rs"), "// not Instant::now()\n").is_empty());
    }

    #[test]
    fn trace_check_accepts_valid_trace() {
        let src = r#"{"traceEvents":[
            {"name":"f","cat":"task","ph":"X","ts":1,"dur":5,"pid":0,"tid":7,"args":{}},
            {"name":"g","cat":"task","ph":"X","ts":2,"dur":3,"pid":1,"tid":8,"args":{}},
            {"name":"submitted","cat":"lifecycle","ph":"i","ts":0,"pid":0,"tid":7,"s":"t"}
        ]}"#;
        let spans = trace_check(src, Some(2)).expect("valid trace");
        assert_eq!(spans.get(&0), Some(&1));
        assert_eq!(spans.get(&1), Some(&1));
    }

    #[test]
    fn trace_check_rejects_missing_node_span() {
        let src = r#"{"traceEvents":[
            {"name":"f","ph":"X","ts":1,"dur":5,"pid":0,"tid":7}
        ]}"#;
        let err = trace_check(src, Some(2)).unwrap_err();
        assert!(err.contains("node 1"), "got: {err}");
    }

    #[test]
    fn trace_check_rejects_malformed_json() {
        assert!(trace_check("{\"traceEvents\":[", None).is_err());
        assert!(trace_check("{\"traceEvents\":{}}", None).is_err());
        assert!(trace_check("{\"traceEvents\":[]} junk", None).is_err());
    }

    #[test]
    fn json_parser_handles_escapes_and_numbers() {
        let v = parse_json(r#"{"a":"q\"\nA","b":-1.5e2,"c":[true,false,null]}"#)
            .expect("parse");
        assert_eq!(v.get("a"), Some(&Json::Str("q\"\nA".to_string())));
        assert_eq!(v.get("b"), Some(&Json::Num(-150.0)));
        assert_eq!(
            v.get("c"),
            Some(&Json::Arr(vec![Json::Bool(true), Json::Bool(false), Json::Null]))
        );
    }

    #[test]
    fn multiline_construction_is_parsed() {
        let src = "let m = OrderedRwLock::new(\n    &classes::STORE_MAP,\n    Vec::new(),\n);\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
        let bad = "let m = OrderedRwLock::new(\n    &classes::BOGUS,\n    Vec::new(),\n);\n";
        let f = lint_source(Path::new("a.rs"), bad, &reg(), false);
        assert_eq!(f.len(), 1);
    }
}
