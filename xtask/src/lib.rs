//! Lock-discipline lint: the static half of the ranked-lock enforcement
//! story (`ray_common::sync` is the dynamic half).
//!
//! The lint walks the workspace's Rust sources and rejects:
//!
//! 1. **Raw lock imports/uses** — any mention of `parking_lot` or of
//!    `std::sync::{Mutex, RwLock, Condvar}` outside the one file allowed to
//!    touch them, `crates/common/src/sync.rs`. Everything else must go
//!    through [`OrderedMutex`]/[`OrderedRwLock`]/[`OrderedCondvar`], whose
//!    rank checks only work if nobody side-steps them.
//! 2. **Poisoning-style guard handling** — `.lock().unwrap()`,
//!    `.read().unwrap()`, `.write().unwrap()`: a tell-tale sign of a raw
//!    `std::sync` lock having snuck in.
//! 3. **Unregistered lock constructions** — `OrderedMutex::new(..)` /
//!    `OrderedRwLock::new(..)` whose first argument is not a registered
//!    `LockClass`: either a `&classes::NAME` from the central rank table or
//!    a `static NAME: LockClass` declared in the same file (test-local
//!    classes).
//!
//! Scanning is line-oriented and intentionally dumb — no syn, no regex
//! crate, std only — because the gate has to build offline. Line comments
//! are stripped before matching so prose about `parking_lot` stays legal.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier, e.g. `raw-lock`.
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt
        )
    }
}

/// The set of `LockClass` names a construction may legally reference.
#[derive(Debug, Default, Clone)]
pub struct ClassRegistry {
    central: BTreeSet<String>,
}

impl ClassRegistry {
    /// Builds the registry from the rank-table source (`sync.rs`).
    pub fn from_sync_source(sync_src: &str) -> ClassRegistry {
        ClassRegistry { central: collect_lock_class_statics(sync_src) }
    }

    fn contains(&self, name: &str) -> bool {
        self.central.contains(name)
    }

    /// Number of centrally registered classes (for the summary line).
    pub fn len(&self) -> usize {
        self.central.len()
    }

    pub fn is_empty(&self) -> bool {
        self.central.is_empty()
    }
}

/// Extracts identifiers declared as `static NAME: LockClass = ...`
/// (with or without `pub`) from one source file.
fn collect_lock_class_statics(src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let line = strip_line_comment(line).trim().to_string();
        let rest = line
            .strip_prefix("pub static ")
            .or_else(|| line.strip_prefix("static "));
        if let Some(rest) = rest {
            if let Some((name, ty)) = rest.split_once(':') {
                if ty.trim_start().starts_with("LockClass") {
                    out.insert(name.trim().to_string());
                }
            }
        }
    }
    out
}

/// Drops a `//` line comment. Keeps `//` that appears inside a string
/// literal out of scope by only cutting at a `//` with an even number of
/// unescaped quotes before it — good enough for this codebase.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn has_word(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack.as_bytes()[at - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[at - 1] != b'_';
        let end = at + word.len();
        let after_ok = end >= haystack.len()
            || !haystack.as_bytes()[end].is_ascii_alphanumeric()
                && haystack.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Lints one file's contents. `allow_raw` is true only for
/// `crates/common/src/sync.rs`, which wraps the raw primitives.
pub fn lint_source(
    path: &Path,
    src: &str,
    registry: &ClassRegistry,
    allow_raw: bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let local_classes = collect_lock_class_statics(src);
    let lines: Vec<&str> = src.lines().collect();

    for (idx, raw_line) in lines.iter().enumerate() {
        let line = strip_line_comment(raw_line);
        let lineno = idx + 1;
        let push = |findings: &mut Vec<Finding>, rule| {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: lineno,
                rule,
                excerpt: raw_line.trim().to_string(),
            });
        };

        if !allow_raw {
            if line.contains("parking_lot") {
                push(&mut findings, "raw-lock");
            }
            let qualified_std_lock = line.contains("std::sync::Mutex")
                || line.contains("std::sync::RwLock")
                || line.contains("std::sync::Condvar");
            let imported_std_lock = line.contains("use std::sync::")
                && (has_word(line, "Mutex")
                    || has_word(line, "RwLock")
                    || has_word(line, "Condvar"));
            if qualified_std_lock || imported_std_lock {
                push(&mut findings, "raw-lock");
            }

            for pat in [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"] {
                if line.contains(pat) {
                    push(&mut findings, "guard-unwrap");
                }
            }
        }

        for ctor in ["OrderedMutex::new(", "OrderedRwLock::new("] {
            let mut search = 0;
            while let Some(pos) = line[search..].find(ctor) {
                let open = search + pos + ctor.len();
                let first_arg = first_argument(&lines, idx, open);
                if !argument_is_registered(&first_arg, registry, &local_classes) {
                    push(&mut findings, "unregistered-class");
                }
                search = open;
            }
        }
    }
    findings
}

/// Collects the first argument of a call whose opening paren sits at byte
/// `open` of line `line_idx`, joining up to a handful of following lines if
/// the argument list wraps.
fn first_argument(lines: &[&str], line_idx: usize, open: usize) -> String {
    let mut arg = String::new();
    let mut depth = 0usize;
    let mut first = true;
    for l in lines.iter().skip(line_idx).take(6) {
        let text = if first {
            first = false;
            strip_line_comment(l).get(open..).unwrap_or("")
        } else {
            strip_line_comment(l)
        };
        for c in text.chars() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        return arg;
                    }
                    depth -= 1;
                }
                ',' if depth == 0 => return arg,
                _ => {}
            }
            arg.push(c);
        }
        arg.push(' ');
    }
    arg
}

/// A first argument is legal when it is `&<path-to->classes::NAME` with
/// NAME in the central rank table, or `&NAME` with NAME declared as a
/// `static NAME: LockClass` in the same file.
fn argument_is_registered(
    arg: &str,
    registry: &ClassRegistry,
    local: &BTreeSet<String>,
) -> bool {
    let arg = arg.trim();
    let Some(path) = arg.strip_prefix('&') else { return false };
    let path = path.trim();
    let segments: Vec<&str> = path.split("::").map(str::trim).collect();
    let Some(name) = segments.last() else { return false };
    if segments.len() >= 2 && segments[segments.len() - 2] == "classes" {
        registry.contains(name)
    } else if segments.len() == 1 {
        local.contains(*name) || registry.contains(name)
    } else {
        false
    }
}

/// Recursively collects `.rs` files under `dir` into `out` (sorted).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of a full lint run.
pub struct LintReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

/// Lints the whole workspace rooted at `root`: `crates/`, plus the root
/// package's `src/`, `tests/`, and `examples/`. The wrapper module itself
/// (`crates/common/src/sync.rs`) is the one file allowed to use the raw
/// primitives. The lint fixtures under `xtask/tests/fixtures` are only
/// scanned when passed explicitly.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let sync_path = root.join("crates/common/src/sync.rs");
    let sync_src = std::fs::read_to_string(&sync_path)?;
    let registry = ClassRegistry::from_sync_source(&sync_src);

    let mut files = Vec::new();
    for sub in ["crates", "src", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }

    let mut findings = Vec::new();
    let files_scanned = files.len();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let allow_raw = file == &sync_path;
        let rel = file.strip_prefix(root).unwrap_or(file);
        findings.extend(lint_source(rel, &src, &registry, allow_raw));
    }
    Ok(LintReport { files_scanned, findings })
}

/// Lints explicitly named files (no allowlist — used by the self-test and
/// for ad-hoc checks of files outside the default walk).
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<LintReport> {
    let sync_src = std::fs::read_to_string(root.join("crates/common/src/sync.rs"))?;
    let registry = ClassRegistry::from_sync_source(&sync_src);
    let mut findings = Vec::new();
    for file in paths {
        let src = std::fs::read_to_string(file)?;
        findings.extend(lint_source(file, &src, &registry, false));
    }
    Ok(LintReport { files_scanned: paths.len(), findings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ClassRegistry {
        ClassRegistry::from_sync_source(
            "pub static STORE_MAP: LockClass = LockClass::new(\"object_store.map\", 300);\n",
        )
    }

    #[test]
    fn raw_parking_lot_is_flagged() {
        let f = lint_source(Path::new("a.rs"), "use parking_lot::Mutex;\n", &reg(), false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-lock");
    }

    #[test]
    fn comments_about_parking_lot_are_fine() {
        let f = lint_source(
            Path::new("a.rs"),
            "// wraps parking_lot primitives\nlet x = 1;\n",
            &reg(),
            false,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn std_sync_lock_import_is_flagged() {
        let f = lint_source(
            Path::new("a.rs"),
            "use std::sync::{Arc, Mutex};\n",
            &reg(),
            false,
        );
        assert_eq!(f.len(), 1);
        // Arc alone stays legal.
        let ok = lint_source(Path::new("a.rs"), "use std::sync::Arc;\n", &reg(), false);
        assert!(ok.is_empty());
    }

    #[test]
    fn guard_unwrap_is_flagged() {
        let f = lint_source(
            Path::new("a.rs"),
            "let g = m.lock().unwrap();\n",
            &reg(),
            false,
        );
        assert_eq!(f[0].rule, "guard-unwrap");
    }

    #[test]
    fn registered_construction_passes() {
        let src = "let m = OrderedMutex::new(&classes::STORE_MAP, HashMap::new());\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
        let qualified =
            "let m = ray_common::sync::OrderedMutex::new(&ray_common::sync::classes::STORE_MAP, 0);\n";
        assert!(lint_source(Path::new("a.rs"), qualified, &reg(), false).is_empty());
    }

    #[test]
    fn unregistered_construction_is_flagged() {
        let src = "let m = OrderedMutex::new(&classes::NOT_A_CLASS, 0);\n";
        let f = lint_source(Path::new("a.rs"), src, &reg(), false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unregistered-class");
    }

    #[test]
    fn file_local_static_class_passes() {
        let src = "static T_LOCAL: LockClass = LockClass::new(\"t.local\", 1);\n\
                   let m = OrderedMutex::new(&T_LOCAL, ());\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
    }

    #[test]
    fn multiline_construction_is_parsed() {
        let src = "let m = OrderedRwLock::new(\n    &classes::STORE_MAP,\n    Vec::new(),\n);\n";
        assert!(lint_source(Path::new("a.rs"), src, &reg(), false).is_empty());
        let bad = "let m = OrderedRwLock::new(\n    &classes::BOGUS,\n    Vec::new(),\n);\n";
        let f = lint_source(Path::new("a.rs"), bad, &reg(), false);
        assert_eq!(f.len(), 1);
    }
}
