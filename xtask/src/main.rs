//! `cargo run -p xtask -- lint [FILES...]`
//!
//! With no arguments after `lint`, walks the whole workspace (see
//! [`xtask::lint_workspace`]) and exits non-zero if any lock-discipline
//! violation is found. With explicit file arguments, lints only those files
//! and applies no allowlist (used by the fixture self-test).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the root is one level up from this
    // crate's manifest.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask must live one level below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let files: Vec<PathBuf> = args.map(PathBuf::from).collect();
            let root = workspace_root();
            let report = if files.is_empty() {
                xtask::lint_workspace(&root)
            } else {
                xtask::lint_paths(&root, &files)
            };
            match report {
                Ok(report) => {
                    for finding in &report.findings {
                        eprintln!("{finding}");
                    }
                    if report.findings.is_empty() {
                        println!(
                            "lock lint: OK ({} file(s) scanned)",
                            report.files_scanned
                        );
                        ExitCode::SUCCESS
                    } else {
                        eprintln!(
                            "lock lint: {} violation(s) in {} file(s) scanned",
                            report.findings.len(),
                            report.files_scanned
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lock lint: I/O error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [FILES...]\n\
                 (got {other:?})"
            );
            ExitCode::FAILURE
        }
    }
}
