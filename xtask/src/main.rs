//! `cargo run -p xtask -- lint [FILES...]`
//!
//! With no arguments after `lint`, walks the whole workspace (see
//! [`xtask::lint_workspace`]) and exits non-zero if any lock-discipline or
//! wall-clock-emission violation is found. With explicit file arguments,
//! lints only those files and applies no allowlist (used by the fixture
//! self-test).
//!
//! `cargo run -p xtask -- trace-check <trace.json> [--expect-nodes N]`
//!
//! Validates a Chrome `trace_event` file produced by a bench binary's
//! `--trace-out` flag: the JSON must parse and, with `--expect-nodes N`,
//! every node pid in `0..N` must have at least one complete span.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the root is one level up from this
    // crate's manifest.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask must live one level below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let files: Vec<PathBuf> = args.map(PathBuf::from).collect();
            let root = workspace_root();
            let report = if files.is_empty() {
                xtask::lint_workspace(&root)
            } else {
                xtask::lint_paths(&root, &files)
            };
            match report {
                Ok(report) => {
                    for finding in &report.findings {
                        eprintln!("{finding}");
                    }
                    if report.findings.is_empty() {
                        println!(
                            "lock lint: OK ({} file(s) scanned)",
                            report.files_scanned
                        );
                        ExitCode::SUCCESS
                    } else {
                        eprintln!(
                            "lock lint: {} violation(s) in {} file(s) scanned",
                            report.findings.len(),
                            report.files_scanned
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lock lint: I/O error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("trace-check") => {
            let mut path: Option<PathBuf> = None;
            let mut expect_nodes: Option<usize> = None;
            let mut rest = args;
            while let Some(a) = rest.next() {
                if a == "--expect-nodes" {
                    expect_nodes = rest.next().and_then(|n| n.parse().ok());
                    if expect_nodes.is_none() {
                        eprintln!("trace-check: --expect-nodes needs a number");
                        return ExitCode::FAILURE;
                    }
                } else if path.is_none() {
                    path = Some(PathBuf::from(a));
                } else {
                    eprintln!("trace-check: unexpected argument {a:?}");
                    return ExitCode::FAILURE;
                }
            }
            let Some(path) = path else {
                eprintln!("usage: cargo run -p xtask -- trace-check <trace.json> [--expect-nodes N]");
                return ExitCode::FAILURE;
            };
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("trace-check: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match xtask::trace_check(&src, expect_nodes) {
                Ok(spans) => {
                    let total: usize = spans.values().sum();
                    println!(
                        "trace-check: OK ({total} span(s) across {} node(s))",
                        spans.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("trace-check: {}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [FILES...]\n\
                 \x20      cargo run -p xtask -- trace-check <trace.json> [--expect-nodes N]\n\
                 (got {other:?})"
            );
            ExitCode::FAILURE
        }
    }
}
