//! `cargo run -p xtask -- analyze [--json] [--update-ratchet] [FILES...]`
//!
//! With no file arguments, walks the whole workspace, runs every static
//! analysis pass (lock discipline, wall clock, lock order, determinism,
//! panic freedom, sleep poll, trace coverage), applies the
//! `xtask/analyze.allow` ratchet, and exits non-zero on any denied
//! finding. With explicit file arguments, analyzes only those files with
//! every path-scoped rule in scope and no allowlist (used by the fixture
//! self-tests).
//!
//! `--json` emits one machine-readable JSON document on stdout.
//! `--update-ratchet` rewrites the allowlist budgets to the actual
//! finding counts (dropping fully burned-down entries), then reports.
//!
//! `cargo run -p xtask -- lint [FILES...]`
//!
//! Legacy alias: runs only the migrated original rules (lock discipline +
//! wall clock), same output shape as before.
//!
//! `cargo run -p xtask -- trace-check <trace.json> [--expect-nodes N]`
//!
//! Validates a Chrome `trace_event` file produced by a bench binary's
//! `--trace-out` flag: the JSON must parse and, with `--expect-nodes N`,
//! every node pid in `0..N` must have at least one complete span.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the root is one level up from this
    // crate's manifest.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask must live one level below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {
            let mut json = false;
            let mut ratchet = false;
            let mut files: Vec<PathBuf> = Vec::new();
            for a in args {
                match a.as_str() {
                    "--json" => json = true,
                    "--update-ratchet" => ratchet = true,
                    _ => files.push(PathBuf::from(a)),
                }
            }
            let root = workspace_root();
            let report = if files.is_empty() {
                xtask::run_analyze(&root)
            } else {
                xtask::run_analyze_paths(&root, &files)
            };
            let report = match report {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("analyze: error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if ratchet {
                if !files.is_empty() {
                    eprintln!("analyze: --update-ratchet only applies to full workspace runs");
                    return ExitCode::FAILURE;
                }
                match xtask::update_ratchet(&root, &report) {
                    Ok(n) => {
                        eprintln!("analyze: ratchet rewritten ({n} budget line(s) remain)");
                        // Re-run so the reported status reflects the new
                        // budgets.
                        match xtask::run_analyze(&root) {
                            Ok(r) => return finish(&r, json),
                            Err(e) => {
                                eprintln!("analyze: error: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("analyze: ratchet rewrite failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            finish(&report, json)
        }
        Some("lint") => {
            let files: Vec<PathBuf> = args.map(PathBuf::from).collect();
            let root = workspace_root();
            let report = if files.is_empty() {
                xtask::lint_workspace(&root)
            } else {
                xtask::lint_paths(&root, &files)
            };
            match report {
                Ok(report) => {
                    for finding in &report.findings {
                        eprintln!("{finding}");
                    }
                    if report.findings.is_empty() {
                        println!(
                            "lock lint: OK ({} file(s) scanned)",
                            report.files_scanned
                        );
                        ExitCode::SUCCESS
                    } else {
                        eprintln!(
                            "lock lint: {} violation(s) in {} file(s) scanned",
                            report.findings.len(),
                            report.files_scanned
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lock lint: I/O error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("trace-check") => {
            let mut path: Option<PathBuf> = None;
            let mut expect_nodes: Option<usize> = None;
            let mut rest = args;
            while let Some(a) = rest.next() {
                if a == "--expect-nodes" {
                    expect_nodes = rest.next().and_then(|n| n.parse().ok());
                    if expect_nodes.is_none() {
                        eprintln!("trace-check: --expect-nodes needs a number");
                        return ExitCode::FAILURE;
                    }
                } else if path.is_none() {
                    path = Some(PathBuf::from(a));
                } else {
                    eprintln!("trace-check: unexpected argument {a:?}");
                    return ExitCode::FAILURE;
                }
            }
            let Some(path) = path else {
                eprintln!("usage: cargo run -p xtask -- trace-check <trace.json> [--expect-nodes N]");
                return ExitCode::FAILURE;
            };
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("trace-check: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match xtask::trace_check(&src, expect_nodes) {
                Ok(spans) => {
                    let total: usize = spans.values().sum();
                    println!(
                        "trace-check: OK ({total} span(s) across {} node(s))",
                        spans.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("trace-check: {}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- analyze [--json] [--update-ratchet] [FILES...]\n\
                 \x20      cargo run -p xtask -- lint [FILES...]\n\
                 \x20      cargo run -p xtask -- trace-check <trace.json> [--expect-nodes N]\n\
                 (got {other:?})"
            );
            ExitCode::FAILURE
        }
    }
}

fn finish(report: &xtask::AnalyzeReport, json: bool) -> ExitCode {
    if json {
        println!("{}", xtask::render_json(report));
        if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        let (text, code) = xtask::render_text(report);
        if code == 0 {
            print!("{text}");
            ExitCode::SUCCESS
        } else {
            eprint!("{text}");
            ExitCode::FAILURE
        }
    }
}
