//! Self-test for the lint gate (satellite of the lock-discipline PR):
//! the clean tree passes, and the raw-Mutex fixture is rejected with every
//! rule firing at least once.

use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().to_path_buf()
}

#[test]
fn clean_tree_passes() {
    let report = xtask::lint_workspace(&root()).unwrap();
    assert!(report.files_scanned > 50, "walk found too few files: {}", report.files_scanned);
    let rendered: Vec<String> =
        report.findings.iter().map(|f| f.to_string()).collect();
    assert!(rendered.is_empty(), "clean tree has violations:\n{}", rendered.join("\n"));
}

#[test]
fn raw_lock_fixture_is_rejected() {
    let fixture = root().join("xtask/tests/fixtures/raw_lock.rs");
    let report = xtask::lint_paths(&root(), &[fixture]).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"raw-lock"), "fixture should trip raw-lock: {rules:?}");
    assert!(rules.contains(&"guard-unwrap"), "fixture should trip guard-unwrap: {rules:?}");
    assert!(
        rules.contains(&"unregistered-class"),
        "fixture should trip unregistered-class: {rules:?}"
    );
    // `use parking_lot::Mutex`, `std::sync::{.. RwLock}`, the fully
    // qualified `std::sync::Mutex`, the guard unwrap, and the unregistered
    // construction: at least five distinct findings.
    assert!(report.findings.len() >= 5, "expected >= 5 findings, got {:?}", report.findings);
}

#[test]
fn rank_table_is_populated() {
    let sync_src =
        std::fs::read_to_string(root().join("crates/common/src/sync.rs")).unwrap();
    let registry = xtask::ClassRegistry::from_sync_source(&sync_src);
    // The central rank table must keep covering every subsystem band.
    assert!(registry.len() >= 25, "rank table shrank to {} classes", registry.len());
}
