//! Fixture self-tests for `cargo run -p xtask -- analyze`: each pass has
//! a fixture with seeded violations it must reject, plus one clean
//! fixture the whole pipeline must wave through with zero findings.
//! Explicit-file runs put every file in scope for every path-scoped rule
//! and apply no allowlist, so the raw findings are the pass output.

use std::path::{Path, PathBuf};

use xtask::walker::{SourceFile, Workspace};

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().to_path_buf()
}

/// Runs the full analyze pipeline over one fixture file and returns the
/// raw (pre-allowlist) findings.
fn analyze_fixture(name: &str) -> Vec<xtask::Finding> {
    let fixture = root().join("xtask/tests/fixtures").join(name);
    let report = xtask::run_analyze_paths(&root(), &[fixture]).unwrap();
    report.all_findings
}

fn rules_of(findings: &[xtask::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn lock_inversion_fixture_is_rejected() {
    let findings = analyze_fixture("lock_inversion.rs");
    let rules = rules_of(&findings);
    assert!(
        rules.contains(&"lock-order-inversion"),
        "HIGH→LOW nesting should trip the inversion rule: {findings:?}"
    );
    assert!(
        rules.contains(&"lock-order-cycle"),
        "CYC_A ↔ CYC_B should trip the cycle detector: {findings:?}"
    );
    let inversion = findings.iter().find(|f| f.rule == "lock-order-inversion").unwrap();
    assert!(
        inversion.excerpt.contains("LOW") && inversion.excerpt.contains("HIGH"),
        "the inversion finding names both classes: {inversion:?}"
    );
}

#[test]
fn hash_iteration_fixture_is_rejected() {
    let findings = analyze_fixture("hash_iteration.rs");
    let hash: Vec<_> = findings.iter().filter(|f| f.rule == "hash-iteration").collect();
    // `.iter()`, `.values()`, `.drain()`, and `for s in seen` — but never
    // the point lookups or the BTreeMap in `fine`.
    assert_eq!(hash.len(), 4, "expected 4 hash-iteration findings: {hash:?}");
    assert!(
        hash.iter().all(|f| f.line <= 15),
        "nothing in fn fine() may be flagged: {hash:?}"
    );
}

#[test]
fn unwrap_panic_fixture_is_rejected() {
    let findings = analyze_fixture("unwrap_panic.rs");
    let panics = findings.iter().filter(|f| f.rule == "panic-freedom").count();
    let indexes = findings.iter().filter(|f| f.rule == "slice-index").count();
    // unwrap, undocumented expect, panic! — the invariant-expect, the
    // assert!, and unwrap_or stay legal.
    assert_eq!(panics, 3, "expected 3 panic-freedom findings: {findings:?}");
    assert_eq!(indexes, 1, "expected 1 slice-index finding: {findings:?}");
}

#[test]
fn sleep_loop_fixture_is_rejected() {
    let findings = analyze_fixture("sleep_loop.rs");
    let sleeps: Vec<_> = findings.iter().filter(|f| f.rule == "sleep-in-loop").collect();
    // Both in-loop sleeps (single-line `loop`, multi-line `while` header)
    // but not the one-shot settle sleep.
    assert_eq!(sleeps.len(), 2, "expected 2 sleep-in-loop findings: {sleeps:?}");
    assert!(
        sleeps.iter().all(|f| f.excerpt.contains("thread::sleep")),
        "findings point at the sleep lines: {sleeps:?}"
    );
}

#[test]
fn trace_coverage_trio_flags_unemitted_and_unasserted() {
    // The fixture files live under `xtask/tests/fixtures/`, which the
    // walker would treat as test code wholesale — so mount them at
    // synthetic workspace paths that exercise all three roles: schema,
    // runtime emitter, test asserter.
    let dir = root().join("xtask/tests/fixtures/trace");
    let mount = |rel: &str, disk: &str| SourceFile {
        rel: PathBuf::from(rel),
        src: std::fs::read_to_string(dir.join(disk)).unwrap(),
    };
    let ws = Workspace {
        root: root(),
        files: vec![
            mount("crates/common/src/trace.rs", "schema.rs"),
            mount("crates/fake/src/emit.rs", "emit.rs"),
            mount("tests/cov.rs", "cov_test.rs"),
        ],
    };
    let findings = xtask::passes::trace_coverage::check_workspace(&ws);
    let of = |rule: &str| -> Vec<&str> {
        findings.iter().filter(|f| f.rule == rule).map(|f| f.excerpt.as_str()).collect()
    };
    // Covered is emitted and asserted; the schema file's own match arms
    // count as neither.
    assert_eq!(
        of("trace-kind-unemitted"),
        vec!["NeverEmitted"],
        "all findings: {findings:?}"
    );
    assert_eq!(
        of("trace-kind-unasserted"),
        vec!["NeverAsserted"],
        "all findings: {findings:?}"
    );
}

#[test]
fn clean_fixture_passes_every_pass() {
    let findings = analyze_fixture("clean.rs");
    assert!(
        findings.is_empty(),
        "the clean fixture must produce zero findings:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn workspace_analyze_gate_is_green() {
    // The tree itself must pass the gate the fixtures exercise: no
    // denied findings, no over-budget groups. (Stale budgets are legal —
    // burn-down tightens them via --update-ratchet.)
    let report = xtask::run_analyze(&root()).unwrap();
    assert!(report.files_scanned > 90, "walk found too few files: {}", report.files_scanned);
    assert!(
        report.is_clean(),
        "workspace analyze must be clean; denied:\n{}\nover budget:\n{}",
        report.denied.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n"),
        report.over_budget.join("\n")
    );
}
