//! Analyzer fixture: the panic-freedom pass must flag the unwrap, the
//! undocumented expect, the panic! macro, and the slice index — and must
//! NOT flag the `expect("invariant: ...")`, the assert!, or the `.get()`.
//! Not compiled as part of any crate.

fn bad(m: &HashMap<u64, u64>, v: &[u8]) -> u64 {
    let a = m.get(&1).unwrap();
    let b = m.get(&2).expect("should be there");
    if v.is_empty() {
        panic!("empty input");
    }
    let first = v[0];
    *a + *b + first as u64
}

fn fine(m: &HashMap<u64, u64>, v: &[u8]) -> u64 {
    let a = m.get(&1).expect("invariant: caller inserted key 1 above");
    assert!(!v.is_empty(), "caller contract");
    let first = v.first().copied().unwrap_or(0);
    *a + first as u64
}
