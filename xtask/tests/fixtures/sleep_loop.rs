//! Analyzer fixture: the sleep-poll pass must flag both sleeps inside
//! loop bodies (the `loop` and the multi-line `while`) and must NOT flag
//! the one-shot sleep outside any loop. Not compiled as part of any
//! crate.

fn poll_until_ready(flag: &AtomicBool) {
    loop {
        if flag.load(Ordering::Acquire) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn poll_with_split_header(flag: &AtomicBool, deadline: Instant) {
    while !flag.load(Ordering::Acquire)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn one_shot_settle() {
    std::thread::sleep(Duration::from_millis(50));
}
