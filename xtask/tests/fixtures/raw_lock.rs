//! Lint fixture: every pattern here must be rejected by
//! `cargo run -p xtask -- lint xtask/tests/fixtures/raw_lock.rs`.
//! Not compiled as part of any crate.

use parking_lot::Mutex;
use std::sync::{Arc, RwLock};

fn poisoned_style(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn unregistered() {
    let _bad = OrderedMutex::new(&classes::NOT_IN_THE_RANK_TABLE, 0u32);
}
