//! Trace-coverage fixture, runtime file: emits `Covered` and
//! `NeverAsserted` but never `NeverEmitted`. Mounted at a synthetic
//! `crates/.../src` path by the self-test.

fn emit_events(c: &Collector) {
    c.emit(TraceEventKind::Covered, "work started");
    c.emit(TraceEventKind::NeverAsserted, "nobody tests this one");
}
