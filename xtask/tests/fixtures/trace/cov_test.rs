//! Trace-coverage fixture, test file: asserts `Covered` and
//! `NeverEmitted` but never `NeverAsserted`. Mounted at a synthetic
//! `tests/` path by the self-test.

fn assertions(log: &TraceLog) {
    log.assert().happened(TraceEventKind::Covered);
    log.assert().happened(TraceEventKind::NeverEmitted);
}
