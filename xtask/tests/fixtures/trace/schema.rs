//! Trace-coverage fixture, schema file: declares a three-variant trace
//! enum. The match arms below are declaration context (`=>`), not
//! emission — the pass must not count them. Not compiled as part of any
//! crate; the self-test mounts this at a synthetic runtime path.

pub enum TraceEventKind {
    Covered,
    NeverEmitted,
    NeverAsserted,
}

impl TraceEventKind {
    fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Covered => "covered",
            TraceEventKind::NeverEmitted => "never_emitted",
            TraceEventKind::NeverAsserted => "never_asserted",
        }
    }
}
