//! Analyzer fixture: the determinism pass must flag every iteration of a
//! hash-ordered container here (`.iter()`, `.values()`, `.drain(..)`,
//! `for .. in`), and must NOT flag the point lookups or the BTreeMap at
//! the bottom. Not compiled as part of any crate.

fn bad(order: &mut HashMap<u64, u64>, seen: HashSet<u64>) {
    for (k, v) in order.iter() {
        emit(*k, *v);
    }
    let total: u64 = order.values().sum();
    order.drain();
    for s in seen {
        emit(s, 0);
    }
}

fn fine(order: &HashMap<u64, u64>, sorted: &BTreeMap<u64, u64>) {
    let _one = order.get(&1);
    let _had = order.contains_key(&2);
    for (k, v) in sorted.iter() {
        emit(*k, *v);
    }
}
