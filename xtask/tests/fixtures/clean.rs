//! Analyzer fixture: the counterpart to the violation fixtures — every
//! pattern here is legal, and the self-test asserts that a full analyze
//! of this file produces zero findings. Not compiled as part of any
//! crate.

fn build() -> (OrderedMutex<u32>, OrderedMutex<u32>) {
    let topo = OrderedMutex::new(&classes::CLUSTER_TOPOLOGY, 0u32);
    let store = OrderedMutex::new(&classes::STORE_MAP, 0u32);
    (topo, store)
}

fn ascending_nesting() -> u32 {
    // topology (rank 100) before store map (rank 300): rank-ascending,
    // so the lock-order pass must stay quiet.
    let outer = topo.lock();
    let inner = store.lock();
    *outer + *inner
}

fn deterministic_iteration(sorted: &BTreeMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in sorted.iter() {
        total += v;
    }
    total
}

fn panic_free(m: &HashMap<u64, u64>, v: &[u8]) -> u64 {
    // Point lookups on a HashMap are order-independent and legal.
    let a = m.get(&1).copied().unwrap_or(0);
    let first = v.first().copied().unwrap_or(0);
    a + first as u64
}

fn one_shot_settle() {
    std::thread::sleep(Duration::from_millis(50));
}
