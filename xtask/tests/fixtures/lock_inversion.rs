//! Analyzer fixture: the lock-order pass must reject this file with one
//! `lock-order-inversion` (LOW acquired under HIGH, ranks inverted) and
//! one `lock-order-cycle` (CYC_A ↔ CYC_B, ranks unparseable so only the
//! cycle detector can catch it). Not compiled as part of any crate.

static HIGH: LockClass = LockClass::new("fixture.high", 20);
static LOW: LockClass = LockClass::new("fixture.low", 10);

// Non-literal ranks: the inversion rule cannot compare them, so the
// cycle below is invisible to it — the cycle detector must fire.
static CYC_A: LockClass = LockClass::new("fixture.cyc_a", RANK_A);
static CYC_B: LockClass = LockClass::new("fixture.cyc_b", RANK_B);

fn build() {
    let hi = OrderedMutex::new(&HIGH, 0u32);
    let lo = OrderedMutex::new(&LOW, 0u32);
    let ca = OrderedMutex::new(&CYC_A, 0u32);
    let cb = OrderedMutex::new(&CYC_B, 0u32);
}

fn inverted() {
    let guard = hi.lock();
    let inner = lo.lock();
}

fn cycle_one_way() {
    let g = ca.lock();
    let h = cb.lock();
}

fn cycle_other_way() {
    let g = cb.lock();
    let h = ca.lock();
}
