#!/usr/bin/env bash
# ThreadSanitizer soak over the chaos suites — the targets that actually
# interleave node kills, cancellation, and GCS failover across threads.
#
# TSan needs a nightly toolchain with the rust-src component
# (`-Zbuild-std` recompiles std with the sanitizer). When neither is
# available the script skips gracefully so verify.sh stays runnable on
# stable-only machines; opt in from verify.sh with VERIFY_TSAN=1 or run
# directly: scripts/tsan.sh
#
# Usage: scripts/tsan.sh [extra `cargo test` args]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly --version >/dev/null 2>&1; then
    echo "tsan: nightly toolchain not installed — skipping (rustup toolchain install nightly)"
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src.*(installed)"; then
    echo "tsan: rust-src not installed for nightly — skipping (rustup +nightly component add rust-src)"
    exit 0
fi

host="$(rustc -vV | sed -n 's/^host: //p')"

# TSan slows execution ~5-15x; the chaos suites' internal deadlines are
# generous enough, but run single-threaded to keep scheduling realistic
# per test rather than oversubscribing the sanitized runtime.
export RUSTFLAGS="-Zsanitizer=thread"
export RUSTDOCFLAGS="-Zsanitizer=thread"
export RUST_TEST_THREADS=1
# Our OrderedMutex wrappers are plain std mutexes underneath; no
# suppressions needed. Keep history large enough for long soaks.
export TSAN_OPTIONS="${TSAN_OPTIONS:-history_size=7}"

echo "tsan: chaos suite"
cargo +nightly test -Zbuild-std --target "$host" --test chaos "$@"

echo "tsan: cancel chaos suite"
cargo +nightly test -Zbuild-std --target "$host" --test cancel_chaos "$@"

echo "tsan: OK"
