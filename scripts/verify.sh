#!/usr/bin/env bash
# Tier-1 verification gate: warnings-clean release build, the full test
# suite, and the chaos suite run on its own (it is the slowest target and
# the one most worth seeing in isolation when it fails).
#
# Usage: scripts/verify.sh   (from the workspace root)
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== lock-discipline lint =="
cargo run -q -p xtask -- lint

echo "== clippy =="
cargo clippy --workspace -- -D warnings

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: test suite =="
cargo test -q

echo "== chaos suite =="
cargo test -q --test chaos

echo "verify: OK"
