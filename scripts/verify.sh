#!/usr/bin/env bash
# Tier-1 verification gate: warnings-clean release build, the full test
# suite, and the chaos suite run on its own (it is the slowest target and
# the one most worth seeing in isolation when it fails).
#
# Usage: scripts/verify.sh   (from the workspace root)
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== static analysis gate =="
# The full multi-pass analyzer: lock discipline + wall clock (the old
# lint), static lock-order, determinism, panic-freedom, sleep-poll, and
# trace coverage, ratcheted by xtask/analyze.allow.
cargo run -q -p xtask -- analyze

echo "== clippy =="
cargo clippy --workspace -- -D warnings

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: test suite =="
cargo test -q

echo "== chaos suite =="
cargo test -q --test chaos

echo "== gcs chaos soak =="
# Control-plane faults: shard loss + disk recovery, flusher stalls, and
# seeded mixed schedules. The shard-loss scenario runs twice with the
# same seed and asserts identical trace signatures (determinism gate).
cargo test -q --test gcs_chaos

echo "== cancel chaos soak =="
# Cancellation, deadline propagation, and admission control under load:
# cancel mid-queue / mid-run, a deadline cascading through a child chain,
# shed-under-burst drain, and a same-seed trace-signature determinism
# gate over a mixed kill + straggler + cancel schedule.
cargo test -q --test cancel_chaos

echo "== serve chaos soak =="
# The serving layer under fire: replica kill + GCS-shard kill under
# closed-loop load (zero failed requests with budget left, bounded p99
# blip, recovery arc pinned by trace asserts), a same-seed recovery
# trace-signature determinism gate, hedged-request dedup (loser
# cancelled, no duplicate side effects), and SLO/scale-down accounting.
cargo test -q --test serve_chaos

echo "== trace smoke =="
# A traced bench run must produce a Chrome trace with at least one task
# span on every node; trace-check also validates the JSON end to end.
trace_out="$(mktemp /tmp/rustray-trace.XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
./target/release/fig08a_locality --quick --trace-out "$trace_out" >/dev/null
cargo run -q -p xtask -- trace-check "$trace_out" --expect-nodes 2

if [[ "${VERIFY_MIRI:-0}" == "1" ]]; then
    echo "== miri smoke (opt-in) =="
    # Undefined-behaviour smoke over the sync layer's unit tests. Needs
    # `rustup +nightly component add miri`; opt in with VERIFY_MIRI=1.
    cargo +nightly miri test -p ray-common sync
fi

if [[ "${VERIFY_TSAN:-0}" == "1" ]]; then
    echo "== thread sanitizer soak (opt-in) =="
    scripts/tsan.sh
fi

echo "verify: OK"
