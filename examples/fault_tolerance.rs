//! Fault tolerance end to end: lineage reconstruction for tasks and
//! checkpoint + replay for actors (paper Fig. 11), with a node killed
//! mid-computation.
//!
//! Run with `cargo run --example fault_tolerance`.

use bytes::Bytes;
use ray_common::config::FaultConfig;
use ray_common::NodeId;
use rustray::registry::RemoteResult;
use rustray::task::{Arg, ObjectRef, TaskOptions};
use rustray::{decode_arg, encode_return, ActorInstance, Cluster, RayConfig, RayContext};
use std::time::Duration;

struct Tally {
    total: i64,
}

impl ActorInstance for Tally {
    fn call(&mut self, _ctx: &RayContext, method: &str, args: &[Bytes]) -> RemoteResult {
        match method {
            "add" => {
                let x: i64 = decode_arg(args, 0)?;
                self.total += x;
                encode_return(&self.total)
            }
            other => Err(format!("no method {other}")),
        }
    }
    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.total.to_le_bytes().to_vec())
    }
    fn restore(&mut self, data: &[u8]) -> Result<(), String> {
        self.total = i64::from_le_bytes(data.try_into().map_err(|_| "bad checkpoint")?);
        Ok(())
    }
}

fn main() {
    let mut config = RayConfig::builder().nodes(3).workers_per_node(2).build();
    config.fault = FaultConfig {
        lineage_enabled: true,
        max_reconstruction_attempts: 3,
        actor_checkpoint_interval: Some(5),
        ..FaultConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    cluster.register_fn1("inc", |x: u64| x + 1);
    cluster.register_actor_class("Tally", |_ctx, args| {
        let start: i64 = decode_arg(args, 0)?;
        Ok(Box::new(Tally { total: start }))
    });

    let ctx = cluster.driver();

    // --- Task lineage: a 40-deep chain with a node killed at step 20 ----
    println!("building a 40-task chain; killing node 1 at step 20...");
    let mut fut: ObjectRef<u64> = ctx.call("inc", vec![Arg::value(&0u64).unwrap()]).unwrap();
    for i in 0..39 {
        fut = ctx.call("inc", vec![Arg::from_ref(&fut)]).unwrap();
        if i == 19 {
            cluster.kill_node(NodeId(1));
            println!("  node 1 killed (its objects and queued tasks are gone)");
        }
    }
    let value = ctx.get_with_timeout(&fut, Duration::from_secs(120)).unwrap();
    println!(
        "  chain result = {value} (tasks re-executed via lineage: {})",
        cluster.metrics().counter("tasks_reexecuted").get()
    );

    // --- Actor recovery: checkpoint every 5 methods ---------------------
    cluster.restart_node(NodeId(1)).unwrap();
    println!("restarted node 1; creating a checkpointing Tally actor...");
    let tally = ctx
        .create_actor("Tally", vec![Arg::value(&0i64).unwrap()], TaskOptions::default())
        .unwrap();
    for _ in 0..12 {
        let f: ObjectRef<i64> =
            ctx.call_actor(&tally, "add", vec![Arg::value(&1i64).unwrap()]).unwrap();
        ctx.get(&f).unwrap();
    }
    let host = cluster
        .gcs()
        .client()
        .get_actor(tally.id())
        .unwrap()
        .expect("actor record")
        .node;
    println!("  actor lives on {host}; killing that node...");
    cluster.kill_node(host);

    let survivor = (0..3).map(NodeId).find(|&n| n != host).unwrap();
    let ctx = cluster.driver_on(survivor);
    let f: ObjectRef<i64> =
        ctx.call_actor(&tally, "add", vec![Arg::value(&1i64).unwrap()]).unwrap();
    let total = ctx.get_with_timeout(&f, Duration::from_secs(120)).unwrap();
    println!(
        "  recovered total = {total} (checkpoints: {}, methods replayed: {})",
        cluster.metrics().counter("checkpoints_taken").get(),
        cluster.metrics().counter("methods_replayed").get()
    );
    assert_eq!(total, 13);

    cluster.shutdown();
    println!("done.");
}
