//! Data-parallel synchronous SGD through a sharded parameter server built
//! on actors — the workload of paper §5.2.1 (Fig. 13), at laptop scale.
//!
//! Four model-replica actors compute real MLP gradients against a hidden
//! teacher network; two parameter-server shard actors apply the averaged
//! updates; rounds pipeline through object references.
//!
//! Run with `cargo run --release --example parameter_server`.

use ray_rl::ps::{train_ps, PsConfig};
use rustray::{Cluster, RayConfig};

fn main() {
    let cluster = Cluster::start(
        RayConfig::builder().nodes(2).workers_per_node(4).build(),
    )
    .expect("start cluster");

    let cfg = PsConfig {
        num_workers: 4,
        num_shards: 2,
        layer_dims: vec![16, 32, 8],
        batch_size: 32,
        iterations: 60,
        lr: 0.05,
        seed: 7,
    };
    println!(
        "training a [16, 32, 8] MLP on {} replicas across {} PS shards...",
        cfg.num_workers, cfg.num_shards
    );
    let report = train_ps(&cluster, &cfg).expect("training run");

    for (i, loss) in report.losses.iter().enumerate() {
        if i % 10 == 0 || i + 1 == report.losses.len() {
            println!("iter {i:>3}: loss {loss:.5}");
        }
    }
    println!(
        "throughput: {:.0} samples/s over {:?}",
        report.samples_per_sec, report.wall
    );
    let first = report.losses.first().unwrap();
    let last = report.losses.last().unwrap();
    println!("loss {first:.4} → {last:.4} ({}x reduction)", (first / last) as i64);

    cluster.shutdown();
}
