//! The tight RL loop of paper Fig. 1 in one program: an embedded policy
//! server (actor) renders actions for simulation tasks, trajectories feed
//! a training step, and the improved policy redeploys to the same server —
//! training, serving, and simulation coupled in a single application.
//!
//! Run with `cargo run --release --example serving_pipeline`.

use bytes::Bytes;
use ray_codec::tensor::TensorF64;
use ray_codec::Blob;
use ray_rl::envs::make_env;
use rustray::registry::RemoteResult;
use rustray::task::{Arg, ObjectRef, TaskOptions};
use rustray::{decode_arg, encode_return, ActorInstance, Cluster, RayConfig, RayContext};

/// A linear policy served behind an actor; `update` hot-swaps weights.
struct ServedPolicy {
    params: Vec<f64>,
    obs_dim: usize,
    act_dim: usize,
}

impl ServedPolicy {
    fn act(&self, obs: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.act_dim);
        for o in 0..self.act_dim {
            let row = &self.params[o * self.obs_dim..(o + 1) * self.obs_dim];
            let bias = self.params[self.obs_dim * self.act_dim + o];
            let z: f64 = row.iter().zip(obs).map(|(w, x)| w * x).sum::<f64>() + bias;
            out.push(z.tanh());
        }
        out
    }
}

impl ActorInstance for ServedPolicy {
    fn call(&mut self, _ctx: &RayContext, method: &str, args: &[Bytes]) -> RemoteResult {
        match method {
            // Serving: one observation in, one action out.
            "act" => {
                let obs: Blob = decode_arg(args, 0)?;
                let obs = TensorF64::from_bytes(&obs.0)
                    .map(TensorF64::into_vec)
                    .map_err(|e| e.to_string())?;
                let action = self.act(&obs);
                encode_return(&Blob(TensorF64::from_vec(action).to_bytes().to_vec()))
            }
            // Deployment: install improved weights.
            "update" => {
                let p: Blob = decode_arg(args, 0)?;
                self.params = TensorF64::from_bytes(&p.0)
                    .map(TensorF64::into_vec)
                    .map_err(|e| e.to_string())?;
                encode_return(&0u8)
            }
            other => Err(format!("no method {other}")),
        }
    }
}

fn main() {
    let cluster = Cluster::start(
        RayConfig::builder().nodes(2).workers_per_node(4).build(),
    )
    .expect("start cluster");

    let env_name = "humanoid-light";
    let probe = make_env(env_name).unwrap();
    let (obs_dim, act_dim) = (probe.obs_dim(), probe.action_dim());
    drop(probe);
    let num_params = obs_dim * act_dim + act_dim;

    cluster.register_actor_class("ServedPolicy", move |_ctx, args| {
        let p: Blob = decode_arg(args, 0)?;
        let params = TensorF64::from_bytes(&p.0)
            .map(TensorF64::into_vec)
            .map_err(|e| e.to_string())?;
        Ok(Box::new(ServedPolicy { params, obs_dim, act_dim }))
    });

    // Simulation tasks drive the environment, querying the served policy
    // for every action (closed-loop control through the object store).
    cluster.register_raw("simulate", {
        let env_name = env_name.to_string();
        move |ctx: &RayContext, args: &[Bytes]| -> RemoteResult {
            let server_ready: rustray::ObjectId =
                ray_codec::decode(&args[0]).map_err(|e| e.to_string())?;
            let _ = server_ready; // Handle travels via the second arg below.
            let actor_id: ray_common::ActorId = decode_arg(args, 1)?;
            let seed: u64 = decode_arg(args, 2)?;
            let handle = rebuild_handle(actor_id, server_ready);
            let mut env = make_env(&env_name)?;
            let mut obs = env.reset(seed);
            let mut total = 0.0;
            for _ in 0..60 {
                let obs_blob = Blob(TensorF64::from_vec(obs.clone()).to_bytes().to_vec());
                let action_ref: ObjectRef<Blob> = ctx
                    .call_actor(&handle, "act", vec![Arg::value(&obs_blob).map_err(|e| e.to_string())?])
                    .map_err(|e| e.to_string())?;
                let action_blob = ctx.get(&action_ref).map_err(|e| e.to_string())?;
                let action = TensorF64::from_bytes(&action_blob.0)
                    .map(TensorF64::into_vec)
                    .map_err(|e| e.to_string())?;
                let (next, reward, done) = env.step(&action);
                total += reward;
                obs = next;
                if done {
                    break;
                }
            }
            encode_return(&total)
        }
    });

    let ctx = cluster.driver();
    let zeros = Blob(TensorF64::from_vec(vec![0.0; num_params]).to_bytes().to_vec());
    let server = ctx
        .create_actor("ServedPolicy", vec![Arg::value(&zeros).unwrap()], TaskOptions::default())
        .unwrap();
    ctx.get(&server.ready()).unwrap();

    // Training loop: simulate → score perturbations → deploy the best.
    let mut params = vec![0.0f64; num_params];
    let mut best_score = f64::NEG_INFINITY;
    let mut rng = ray_rl::envs::EnvRng::new(9);
    for round in 0..5 {
        // Evaluate the deployed policy with 8 parallel closed-loop sims.
        let futs: Vec<ObjectRef<f64>> = (0..8)
            .map(|i| {
                ctx.call(
                    "simulate",
                    vec![
                        Arg::value(&server.ready().id()).unwrap(),
                        Arg::value(&server.id()).unwrap(),
                        Arg::value(&(round * 100 + i as u64)).unwrap(),
                    ],
                )
                .unwrap()
            })
            .collect();
        let scores = ctx.get_all(&futs).unwrap();
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        println!("round {round}: deployed policy mean return {mean:.1}");
        best_score = best_score.max(mean);

        // Naive hill-climb training step (the point is the pipeline, not
        // the optimizer): nudge parameters and redeploy.
        for p in &mut params {
            *p += 0.3 * rng.normal();
        }
        let blob = Blob(TensorF64::from_vec(params.clone()).to_bytes().to_vec());
        let ack: ObjectRef<u8> =
            ctx.call_actor(&server, "update", vec![Arg::value(&blob).unwrap()]).unwrap();
        ctx.get(&ack).unwrap();
    }
    println!("best deployed mean return: {best_score:.1}");
    cluster.shutdown();
}

/// Rebuilds an actor handle from its parts (handles travel by value
/// between tasks as (id, creation-object) pairs).
fn rebuild_handle(
    actor: ray_common::ActorId,
    _ready: rustray::ObjectId,
) -> rustray::ActorHandle {
    rustray::ActorHandle::from_parts(actor, _ready)
}
