//! Evolution Strategies on rustray — the paper's §5.3.1 workload at
//! laptop scale.
//!
//! Every iteration broadcasts the policy once, fans out mirrored
//! perturbation evaluations on the Humanoid-like task, and combines the
//! gradient through an aggregation tree of nested tasks.
//!
//! Run with `cargo run --release --example evolution_strategies`.

use ray_rl::es::{train_es, EsConfig};
use rustray::{Cluster, RayConfig};

fn main() {
    let cluster = Cluster::start(
        RayConfig::builder().nodes(2).workers_per_node(4).build(),
    )
    .expect("start cluster");

    let cfg = EsConfig {
        env: "humanoid-light".into(),
        num_workers: 32,
        episodes_per_eval: 1,
        max_steps: 60,
        sigma: 0.3,
        lr: 0.4,
        iterations: 20,
        target_score: Some(180.0),
        eval_episodes: 3,
        agg_leaf: 8,
        agg_fan_in: 4,
        seed: 42,
    };
    println!(
        "ES on {}: {} mirrored perturbations/iter, aggregation tree fan-in {}",
        cfg.env, cfg.num_workers, cfg.agg_fan_in
    );

    let report = train_es(&cluster, &cfg).expect("training run");
    for (i, score) in report.scores.iter().enumerate() {
        println!("iter {i:>3}: eval score {score:>8.1}");
    }
    match report.solved_at {
        Some(i) => println!("reached target score at iteration {i} in {:?}", report.wall),
        None => println!("best score {:.1} after {:?}", report.best(), report.wall),
    }

    cluster.shutdown();
}
