use ray_repro::common::RayConfig;
use ray_repro::rl::allreduce::{chunk_bounds, create_ring, register};
use ray_repro::ray::task::Arg;
use ray_repro::ray::Cluster;
use ray_repro::codec::Blob;
use std::time::Instant;

fn main() {
    let workers = 4;
    let elements = (16usize << 20) / 8;
    let mut cfg = RayConfig::builder().nodes(workers).workers_per_node(2).build();
    cfg.transport.connections_per_transfer = 8;
    let cluster = Cluster::start(cfg).unwrap();
    register(&cluster);
    let ctx = cluster.driver();
    let buffers: Vec<Vec<f64>> = (0..workers).map(|w| vec![w as f64; elements]).collect();
    let handles = create_ring(&ctx, workers, buffers).unwrap();
    let n = workers;
    let bounds = chunk_bounds(elements, n);
    for step in 0..2 {
        for i in 0..n {
            let c = (i + n - step) % n;
            let (lo, hi) = bounds[c];
            let t = Instant::now();
            let r = ctx.call_actor::<Blob>(&handles[i], "chunk",
                vec![Arg::value(&(lo as u64)).unwrap(), Arg::value(&(hi as u64)).unwrap()]).unwrap();
            let d_chunk = t.elapsed();
            let t = Instant::now();
            let _a = ctx.call_actor::<u8>(&handles[(i+1)%n], "reduce",
                vec![Arg::value(&(lo as u64)).unwrap(), Arg::value(&(hi as u64)).unwrap(), Arg::from_ref(&r)]).unwrap();
            println!("step {step} rank {i}: submit chunk {d_chunk:?}, submit reduce {:?}", t.elapsed());
        }
    }
    cluster.shutdown();
}
