//! Quickstart: the Ray API of paper Table 1 in one file.
//!
//! Run with `cargo run --example quickstart`.

use rustray::task::{Arg, ObjectRef, TaskOptions};
use rustray::{Cluster, RayConfig};
use std::time::Duration;

fn main() {
    // A 2-node, 4-workers-per-node cluster inside this process.
    let cluster = Cluster::start(
        RayConfig::builder().nodes(2).workers_per_node(4).build(),
    )
    .expect("start cluster");

    // --- Remote functions: futures = f.remote(args) --------------------
    cluster.register_fn2("add", |a: i64, b: i64| a + b);
    cluster.register_fn1("square", |x: i64| x * x);

    let ctx = cluster.driver();
    let sum: ObjectRef<i64> = ctx
        .call("add", vec![Arg::value(&40i64).unwrap(), Arg::value(&2i64).unwrap()])
        .unwrap();
    // Futures chain without blocking: pass `sum` straight into `square`.
    let squared: ObjectRef<i64> = ctx.call("square", vec![Arg::from_ref(&sum)]).unwrap();
    println!("add(40, 2)^2 = {}", ctx.get(&squared).unwrap());

    // --- Fan-out / fan-in ----------------------------------------------
    let futures: Vec<ObjectRef<i64>> = (0..16i64)
        .map(|i| ctx.call("square", vec![Arg::value(&i).unwrap()]).unwrap())
        .collect();
    let total: i64 = ctx.get_all(&futures).unwrap().into_iter().sum();
    println!("sum of squares 0..16 = {total}");

    // --- ray.wait: react to whichever finishes first --------------------
    cluster.register_fn1("sleepy", |ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        ms
    });
    let slow: ObjectRef<u64> = ctx.call("sleepy", vec![Arg::value(&300u64).unwrap()]).unwrap();
    let fast: ObjectRef<u64> = ctx.call("sleepy", vec![Arg::value(&10u64).unwrap()]).unwrap();
    let (ready, pending) = ctx
        .wait(&[slow.id(), fast.id()], 1, Duration::from_secs(5))
        .unwrap();
    println!("wait: {} ready ({} pending) — the fast task wins", ready.len(), pending.len());

    // --- Actors: stateful computation ------------------------------------
    use bytes::Bytes;
    use rustray::registry::RemoteResult;
    use rustray::{decode_arg, encode_return, ActorInstance, RayContext};

    struct Counter {
        value: i64,
    }
    impl ActorInstance for Counter {
        fn call(&mut self, _ctx: &RayContext, method: &str, args: &[Bytes]) -> RemoteResult {
            match method {
                "incr" => {
                    let by: i64 = decode_arg(args, 0)?;
                    self.value += by;
                    encode_return(&self.value)
                }
                other => Err(format!("no method {other}")),
            }
        }
    }
    cluster.register_actor_class("Counter", |_ctx, args| {
        let start: i64 = decode_arg(args, 0)?;
        Ok(Box::new(Counter { value: start }))
    });

    let counter = ctx
        .create_actor("Counter", vec![Arg::value(&100i64).unwrap()], TaskOptions::default())
        .unwrap();
    let mut last = 0;
    for _ in 0..5 {
        let fut: ObjectRef<i64> =
            ctx.call_actor(&counter, "incr", vec![Arg::value(&1i64).unwrap()]).unwrap();
        last = ctx.get(&fut).unwrap();
    }
    println!("counter after 5 increments from 100: {last}");

    cluster.shutdown();
    println!("done.");
}
