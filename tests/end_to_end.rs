//! Cross-crate integration tests: the paper's end-to-end scenarios
//! exercised through the public APIs of every layer at once.

use std::time::Duration;

use bytes::Bytes;
use ray_repro::common::config::{GcsConfig, ObjectStoreConfig};
use ray_repro::common::{NodeId, RayConfig};
use ray_repro::ray::registry::RemoteResult;
use ray_repro::ray::task::{Arg, ObjectRef, TaskOptions};
use ray_repro::ray::{decode_arg, encode_return, ActorInstance, Cluster, RayContext};

/// Paper Fig. 7: `c = add(a, b)` with `a` and `b` on different nodes. The
/// task runs somewhere, pulls its remote input, and `get` replicates the
/// result back to the driver.
#[test]
fn figure7_add_with_remote_inputs() {
    let cluster = Cluster::start(
        RayConfig::builder().nodes(2).workers_per_node(1).build(),
    )
    .unwrap();
    cluster.register_fn2("add", |a: Vec<f64>, b: Vec<f64>| -> Vec<f64> {
        a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
    });
    // Place a on node 0 and b on node 1 via per-node drivers.
    let ctx0 = cluster.driver_on(NodeId(0));
    let ctx1 = cluster.driver_on(NodeId(1));
    let a = ctx0.put(&vec![1.0f64; 1000]).unwrap();
    let b = ctx1.put(&vec![2.0f64; 1000]).unwrap();

    let c: ObjectRef<Vec<f64>> =
        ctx0.call("add", vec![Arg::from_ref(&a), Arg::from_ref(&b)]).unwrap();
    let result = ctx0.get(&c).unwrap();
    assert_eq!(result.len(), 1000);
    assert!(result.iter().all(|&x| x == 3.0));
    // The computation genuinely crossed nodes: some bytes moved.
    assert!(cluster.fabric().bytes_transferred() > 0);
    cluster.shutdown();
}

/// Paper Fig. 2/3: the canonical `train_policy` program — simulator
/// actors generate rollouts, a task folds them into a policy, repeated
/// for several steps. This is the pseudocode the whole system motivates.
#[test]
fn figure3_train_policy_program() {
    struct Simulator {
        env: ray_repro::rl::envs::GridWorld,
        rollouts: u32,
    }
    impl ActorInstance for Simulator {
        fn call(&mut self, _ctx: &RayContext, method: &str, args: &[Bytes]) -> RemoteResult {
            match method {
                "rollout" => {
                    use ray_repro::rl::envs::Environment;
                    let policy_bias: f64 = decode_arg(args, 0)?;
                    self.rollouts += 1;
                    // A one-parameter "policy": bias toward moving right.
                    let mut obs = self.env.reset(self.rollouts as u64);
                    let mut total = 0.0;
                    for step in 0..64 {
                        let action = if (step as f64 * 0.37 + policy_bias).sin() > -policy_bias
                        {
                            [1.0, 0.0]
                        } else {
                            [0.0, 1.0]
                        };
                        let (o, r, done) = self.env.step(&action);
                        obs = o;
                        total += r;
                        if done {
                            break;
                        }
                    }
                    let _ = obs;
                    encode_return(&total)
                }
                other => Err(format!("no method {other}")),
            }
        }
    }

    let cluster = Cluster::start(
        RayConfig::builder().nodes(2).workers_per_node(2).build(),
    )
    .unwrap();
    cluster.register_actor_class("Simulator", |_ctx, _args| {
        Ok(Box::new(Simulator { env: ray_repro::rl::envs::GridWorld::new(4), rollouts: 0 }))
    });
    cluster.register_raw("update_policy", |_ctx, args| {
        // policy + rollout returns → improved policy (take the mean shift).
        let mut policy: f64 = decode_arg(args, 0)?;
        let mut total = 0.0;
        for i in 1..args.len() {
            let r: f64 = decode_arg(args, i)?;
            total += r;
        }
        policy += 0.01 * (total / (args.len() - 1).max(1) as f64);
        encode_return(&policy)
    });

    let ctx = cluster.driver();
    // Create 4 simulator actors (Fig. 3 creates 10).
    let sims: Vec<_> = (0..4)
        .map(|_| ctx.create_actor("Simulator", vec![], TaskOptions::default()).unwrap())
        .collect();
    // 10 training steps: rollout on every actor, then update the policy.
    let mut policy: ObjectRef<f64> = {
        ctx.put(&0.1f64).unwrap()
    };
    for _ in 0..10 {
        let rollouts: Vec<ObjectRef<f64>> = sims
            .iter()
            .map(|s| ctx.call_actor(s, "rollout", vec![Arg::from_ref(&policy)]).unwrap())
            .collect();
        let mut args = vec![Arg::from_ref(&policy)];
        args.extend(rollouts.iter().map(Arg::from_ref));
        policy = ctx.call("update_policy", args).unwrap();
    }
    let final_policy = ctx.get(&policy).unwrap();
    assert!(final_policy.is_finite());
    cluster.shutdown();
}

/// GCS flushing keeps control-state memory bounded while a task stream
/// runs (paper Fig. 10b, live end-to-end rather than synthetic keys).
#[test]
fn gcs_flushing_bounds_memory_during_workload() {
    let mut cfg = RayConfig::builder().nodes(2).workers_per_node(2).build();
    cfg.gcs = GcsConfig {
        num_shards: 2,
        chain_length: 1,
        flush_enabled: true,
        flush_threshold_entries: 200,
        flush_interval: Duration::from_millis(5),
        op_delay: Duration::ZERO,
        ..GcsConfig::default()
    };
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn0("nop", || 0u8);
    let ctx = cluster.driver();
    for batch in 0..10 {
        let futs: Vec<ObjectRef<u8>> =
            (0..200).map(|_| ctx.call("nop", vec![]).unwrap()).collect();
        ctx.get_all(&futs).unwrap();
        let _ = batch;
    }
    // Give the flusher a beat, then check entries moved to disk.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        cluster.gcs().entries_flushed() > 500,
        "flusher should have moved lineage to disk, flushed {}",
        cluster.gcs().entries_flushed()
    );
    cluster.shutdown();
}

/// Tasks keep completing while a GCS chain member is crashed and the
/// chain reconfigures underneath them (paper Fig. 10a, end-to-end).
#[test]
fn workload_survives_gcs_replica_failure() {
    let mut cfg = RayConfig::builder().nodes(2).workers_per_node(2).build();
    cfg.gcs.num_shards = 1;
    cfg.gcs.chain_length = 2;
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("echo", |x: u64| x);
    let ctx = cluster.driver();
    for i in 0..30u64 {
        if i == 10 {
            cluster.gcs().shard(ray_repro::common::ShardId(0)).crash_member(0);
        }
        let f: ObjectRef<u64> = ctx.call("echo", vec![Arg::value(&i).unwrap()]).unwrap();
        assert_eq!(ctx.get(&f).unwrap(), i);
    }
    assert!(cluster.gcs().shard(ray_repro::common::ShardId(0)).reconfigurations() >= 1);
    cluster.shutdown();
}

/// Object-store pressure: results larger than memory spill by LRU and
/// stay readable; the workload completes.
#[test]
fn object_store_spills_under_pressure() {
    let mut cfg = RayConfig::builder().nodes(1).workers_per_node(2).build();
    cfg.object_store = ObjectStoreConfig { capacity_bytes: 256 * 1024, spill_enabled: true };
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("blob", |n: u64| vec![n as u8; 64 * 1024]);
    let ctx = cluster.driver();
    let futs: Vec<ObjectRef<Vec<u8>>> = (0..16u64)
        .map(|i| ctx.call("blob", vec![Arg::value(&i).unwrap()]).unwrap())
        .collect();
    // All 1 MiB of results must be retrievable from a 256 KiB store.
    for (i, f) in futs.iter().enumerate() {
        let v = ctx.get(f).unwrap();
        assert_eq!(v.len(), 64 * 1024);
        assert!(v.iter().all(|&b| b == i as u8));
    }
    let store = cluster.object_store(NodeId(0)).unwrap();
    assert!(store.eviction_count() > 0, "pressure should have forced evictions");
    cluster.shutdown();
}

/// Heterogeneous resources end-to-end: GPU tasks land only on the GPU
/// node while CPU tasks spread (paper §5.3.2's heterogeneity story).
#[test]
fn heterogeneous_resources_route_correctly() {
    use ray_repro::common::Resources;
    let cluster = Cluster::start(
        RayConfig::builder()
            .nodes(2)
            .workers_per_node(2)
            .node_resources(Resources::new(2.0, 1.0))
            .build(),
    )
    .unwrap();
    cluster.register_fn0("whoami", || std::thread::current().name().unwrap().to_string());
    let ctx = cluster.driver();
    let mut gpu_nodes = std::collections::HashSet::new();
    for _ in 0..6 {
        let f: ObjectRef<String> =
            ctx.call_opts("whoami", vec![], TaskOptions::gpus(1.0)).unwrap();
        let name = ctx.get(&f).unwrap();
        // worker-N<i>-<j>.
        gpu_nodes.insert(name.split('-').nth(1).unwrap().to_string());
    }
    // GPU tasks used GPU-capable nodes (both have 1 GPU here, so just
    // check they executed); CPU-only clusters were covered elsewhere.
    assert!(!gpu_nodes.is_empty());
    cluster.shutdown();
}

/// The full ES training loop survives a node failure mid-run: simulation
/// tasks on the dead node re-execute via lineage and training finishes
/// with the same final score as an undisturbed run.
#[test]
fn es_training_survives_node_failure() {
    use ray_repro::rl::es::{train_es, EsConfig};
    let mut cfg = EsConfig::small();
    cfg.iterations = 6;
    cfg.num_workers = 8;

    // Undisturbed reference run.
    let cluster1 = Cluster::start(
        RayConfig::builder().nodes(3).workers_per_node(2).seed(1).build(),
    )
    .unwrap();
    let clean = train_es(&cluster1, &cfg).unwrap();
    cluster1.shutdown();

    // Run with a node killed after a short delay.
    let cluster2 = Cluster::start(
        RayConfig::builder().nodes(3).workers_per_node(2).seed(1).build(),
    )
    .unwrap();
    let c2 = &cluster2;
    // Kill a non-driver node shortly into the run, concurrently.
    let report = std::thread::scope(|s| {
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            c2.kill_node(NodeId(2));
        });
        train_es(c2, &cfg).unwrap()
    });

    // Same deterministic algorithm; recovery must not change the math.
    assert_eq!(report.scores.len(), clean.scores.len());
    for (a, b) in report.scores.iter().zip(clean.scores.iter()) {
        assert!((a - b).abs() < 1e-6, "fault recovery changed results: {a} vs {b}");
    }
    cluster2.shutdown();
}
