//! Cancellation, deadline-propagation, and admission-control suite.
//!
//! Exercises the teardown paths end to end against live clusters:
//! - a cancelled *queued* task is dropped by the dispatch scan and never
//!   emits `running`;
//! - a cancelled *running* task frees its worker slot, fans out to its
//!   children (`cancel_propagated`), and its outputs are never
//!   reconstructed;
//! - a deadline set at the root of a 3-deep nested chain expires every
//!   level of the chain;
//! - a burst past the admission watermark sheds with `Overloaded` while
//!   every admitted task still drains to completion;
//! - a mixed schedule (straggler injection, mid-run cancel, mid-run
//!   deadline expiry, node kill + lineage reconstruction) replays with an
//!   identical trace signature under the same seed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ray_repro::common::config::FaultConfig;
use ray_repro::common::metrics::names;
use ray_repro::common::trace::{TraceEntity, TraceEventKind};
use ray_repro::common::{NodeId, RayConfig, RayError};
use ray_repro::ray::task::{Arg, ObjectRef, TaskOptions};
use ray_repro::ray::{chaos, encode_return, node_affinity, Cluster};

const LONG: Duration = Duration::from_secs(60);

fn wait_for_counter(cluster: &Cluster, name: &str, min: u64, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cluster.metrics().counter(name).get() >= min {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn wait_until(mut pred: impl FnMut() -> bool, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Registers a function that parks its worker (without blocking on any
/// object) until `release` flips, setting `started` on entry. With one
/// base worker per node this pins the node's queue: later default-demand
/// tasks stay queued until the blocker returns.
fn register_blocker(cluster: &Cluster, started: &Arc<AtomicBool>, release: &Arc<AtomicBool>) {
    let (started, release) = (started.clone(), release.clone());
    cluster.register_raw("blocker", move |_ctx, _args| {
        started.store(true, Ordering::SeqCst);
        let t0 = Instant::now();
        while !release.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(20) {
            std::thread::sleep(Duration::from_millis(2));
        }
        encode_return(&1u64)
    });
}

// ----------------------------------------------------------------------
// Cancel mid-queue: the task is dropped before it ever runs.
// ----------------------------------------------------------------------

#[test]
fn cancelled_queued_task_never_runs() {
    let cfg = RayConfig::builder().nodes(1).workers_per_node(1).seed(11).tracing(true).build();
    let cluster = Cluster::start(cfg).unwrap();
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    register_blocker(&cluster, &started, &release);
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();

    let hold: ObjectRef<u64> = ctx.call("blocker", vec![]).unwrap();
    assert!(wait_until(|| started.load(Ordering::SeqCst), LONG), "blocker never started");

    // The single worker is held, so the victim parks in the local queue.
    let victim: ObjectRef<u64> = ctx.call("inc", vec![Arg::value(&1u64).unwrap()]).unwrap();
    assert!(ctx.cancel_ref(&victim).unwrap(), "first cancel must report newly-cancelled");
    assert!(!ctx.cancel_ref(&victim).unwrap(), "second cancel must be a no-op");

    // The dispatch scan tears the victim down without waiting for the
    // blocker: its consumers observe the typed error immediately.
    assert!(wait_for_counter(&cluster, names::TASKS_CANCELLED, 1, LONG));
    match ctx.get_with_timeout(&victim, LONG) {
        Err(RayError::Cancelled(_)) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    release.store(true, Ordering::SeqCst);
    assert_eq!(ctx.get_with_timeout(&hold, LONG).unwrap(), 1, "the cluster drains");

    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::TaskCancelled)
        .never(TraceEventKind::Failed)
        .never(TraceEventKind::TaskDeadlineExceeded);
    let mut cancelled = 0;
    for entity in log.entities() {
        if !matches!(entity, TraceEntity::Task(_)) {
            continue;
        }
        if log.count_for(entity, TraceEventKind::TaskCancelled) == 0 {
            continue;
        }
        cancelled += 1;
        assert_eq!(
            log.count_for(entity, TraceEventKind::Running),
            0,
            "a task cancelled in the queue must never reach running"
        );
    }
    assert_eq!(cancelled, 1, "exactly the victim is cancelled");
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Cancel mid-run: slot freed, children cancelled, nothing reconstructed.
// ----------------------------------------------------------------------

#[test]
fn cancelled_running_task_frees_worker_and_cancels_children() {
    let cfg = RayConfig::builder().nodes(1).workers_per_node(1).seed(12).tracing(true).build();
    let cluster = Cluster::start(cfg).unwrap();
    let child_started = Arc::new(AtomicBool::new(false));
    {
        let child_started = child_started.clone();
        cluster.register_raw("spin_child", move |ctx, _args| {
            child_started.store(true, Ordering::SeqCst);
            let t0 = Instant::now();
            // Cooperative cancellation: the body polls its own token.
            while !ctx.is_cancelled() && t0.elapsed() < Duration::from_secs(20) {
                std::thread::sleep(Duration::from_millis(2));
            }
            encode_return(&0u64)
        });
    }
    cluster.register_raw("parent", move |ctx, _args| {
        let child: ObjectRef<u64> = ctx.call("spin_child", vec![]).map_err(|e| e.to_string())?;
        // Blocks until cancellation aborts the fetch (the child never
        // finishes on its own).
        match ctx.get_with_timeout(&child, Duration::from_secs(30)) {
            Ok(v) => encode_return(&v),
            Err(e) => Err(e.to_string()),
        }
    });
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();

    let root: ObjectRef<u64> = ctx.call("parent", vec![]).unwrap();
    assert!(wait_until(|| child_started.load(Ordering::SeqCst), LONG), "child never started");

    // Both parent and child are mid-run now; cancelling the root fans out.
    assert!(ctx.cancel_ref(&root).unwrap());
    assert!(wait_for_counter(&cluster, names::TASKS_CANCELLED, 2, LONG));

    // The worker slots are free again: fresh work completes on this
    // single-base-worker node.
    let after: ObjectRef<u64> = ctx.call("inc", vec![Arg::value(&41u64).unwrap()]).unwrap();
    assert_eq!(ctx.get_with_timeout(&after, LONG).unwrap(), 42);
    match ctx.get_with_timeout(&root, LONG) {
        Err(RayError::Cancelled(_)) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::TaskCancelled)
        .happened(TraceEventKind::CancelPropagated)
        .never(TraceEventKind::Failed)
        .never(TraceEventKind::Reconstructing);
    let mut cancelled = 0;
    for entity in log.entities() {
        if !matches!(entity, TraceEntity::Task(_)) {
            continue;
        }
        if log.count_for(entity, TraceEventKind::TaskCancelled) == 0 {
            continue;
        }
        cancelled += 1;
        assert!(
            log.count_for(entity, TraceEventKind::Running) > 0,
            "both victims were cancelled mid-run"
        );
        assert_eq!(
            log.count_for(entity, TraceEventKind::Finished),
            0,
            "a cancelled task must not also finish"
        );
    }
    assert_eq!(cancelled, 2, "parent and child are both torn down");
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Deadline cascade: a root timeout expires a 3-deep nested chain.
// ----------------------------------------------------------------------

#[test]
fn deadline_propagates_through_nested_chain() {
    let cfg = RayConfig::builder().nodes(1).workers_per_node(2).seed(13).tracing(true).build();
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_raw("chain_level", move |ctx, args| {
        let depth: u64 = ray_repro::ray::decode_arg(args, 0)?;
        if depth == 0 {
            // The leaf outlives any budget the cascade carries.
            std::thread::sleep(Duration::from_millis(500));
            return encode_return(&0u64);
        }
        let child: ObjectRef<u64> = ctx
            .call("chain_level", vec![Arg::value(&(depth - 1)).unwrap()])
            .map_err(|e| e.to_string())?;
        match ctx.get_with_timeout(&child, Duration::from_secs(30)) {
            Ok(v) => encode_return(&(v + 1)),
            Err(e) => Err(e.to_string()),
        }
    });
    let ctx = cluster.driver();

    let opts = TaskOptions::default().with_timeout(Duration::from_millis(150));
    let root: ObjectRef<u64> =
        ctx.call_opts("chain_level", vec![Arg::value(&2u64).unwrap()], opts).unwrap();
    match ctx.get_with_timeout(&root, LONG) {
        Err(RayError::DeadlineExceeded(_)) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // Root, middle, and leaf all expire — the leaf only reports once its
    // oblivious 500ms body returns.
    assert!(wait_for_counter(&cluster, names::DEADLINE_EXCEEDED, 3, LONG));

    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::TaskDeadlineExceeded)
        .never(TraceEventKind::Failed)
        .never(TraceEventKind::TaskCancelled);
    let mut expired = 0;
    for entity in log.entities() {
        if !matches!(entity, TraceEntity::Task(_)) {
            continue;
        }
        if log.count_for(entity, TraceEventKind::TaskDeadlineExceeded) > 0 {
            expired += 1;
            assert_eq!(
                log.count_for(entity, TraceEventKind::Finished),
                0,
                "an expired task must not also finish"
            );
        }
    }
    assert_eq!(expired, 3, "the whole 3-deep chain expires");
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Admission control: burst past the watermark sheds, admitted work drains.
// ----------------------------------------------------------------------

#[test]
fn burst_past_watermark_sheds_and_cluster_drains() {
    let mut cfg = RayConfig::builder().nodes(1).workers_per_node(1).seed(14).tracing(true).build();
    cfg.scheduler.admission_watermark = Some(3);
    cfg.scheduler.admission_retry_limit = 2;
    let cluster = Cluster::start(cfg).unwrap();
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    register_blocker(&cluster, &started, &release);
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();

    let hold: ObjectRef<u64> = ctx.call("blocker", vec![]).unwrap();
    assert!(wait_until(|| started.load(Ordering::SeqCst), LONG), "blocker never started");

    // The worker is held and nothing drains, so the submit-edge depth
    // climbs monotonically: the watermark admits exactly 3 of the burst.
    let mut admitted: Vec<(u64, ObjectRef<u64>)> = Vec::new();
    let mut shed = 0;
    for i in 0..16u64 {
        match ctx.call::<u64>("inc", vec![Arg::value(&i).unwrap()]) {
            Ok(r) => admitted.push((i, r)),
            Err(RayError::Overloaded(_)) => shed += 1,
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }
    assert_eq!(admitted.len(), 3, "watermark admits exactly watermark tasks");
    assert_eq!(shed, 13);
    // Each shed submission was retried before giving up, and every
    // rejection counts.
    assert!(cluster.metrics().counter(names::TASKS_SHED).get() >= 13);
    // The new counters appear in the Prometheus text exposition from
    // startup (eager registration), not only after the first teardown.
    let text = cluster.metrics().render();
    for name in [names::TASKS_CANCELLED, names::TASKS_SHED, names::DEADLINE_EXCEEDED] {
        assert!(text.contains(name), "{name} missing from metrics exposition");
    }

    // Draining: the blocker and every admitted task complete; nothing
    // that was accepted is lost.
    release.store(true, Ordering::SeqCst);
    assert_eq!(ctx.get_with_timeout(&hold, LONG).unwrap(), 1);
    for (i, r) in &admitted {
        assert_eq!(ctx.get_with_timeout(r, LONG).unwrap(), i + 1, "admitted task {i} completes");
    }

    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::TaskShed)
        .never(TraceEventKind::Failed)
        .never(TraceEventKind::TaskCancelled);
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Determinism: the same seed replays the same mixed schedule bit-for-bit.
// ----------------------------------------------------------------------

/// One mixed cancellation-chaos run: a pinned chain, a straggler node
/// (`DelayWorker`), a mid-run cancel, a mid-run deadline expiry, and a
/// node kill followed by lineage reconstruction of the straggler's
/// output. Returns the run's trace signature.
fn traced_cancel_signature(seed: u64) -> String {
    let mut cfg =
        RayConfig::builder().nodes(3).workers_per_node(2).seed(seed).tracing(true).build();
    cfg.fault = FaultConfig {
        lineage_enabled: true,
        max_reconstruction_attempts: 10,
        ..Default::default()
    };
    let cluster = Cluster::start(cfg).unwrap();
    let spinning = Arc::new(AtomicBool::new(false));
    {
        let spinning = spinning.clone();
        cluster.register_raw("spin_until_cancelled", move |ctx, _args| {
            spinning.store(true, Ordering::SeqCst);
            let t0 = Instant::now();
            while !ctx.is_cancelled() && t0.elapsed() < Duration::from_secs(20) {
                std::thread::sleep(Duration::from_millis(2));
            }
            encode_return(&0u64)
        });
    }
    let napping = Arc::new(AtomicBool::new(false));
    {
        let napping = napping.clone();
        cluster.register_raw("outlive_deadline", move |_ctx, _args| {
            napping.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(700));
            encode_return(&0u64)
        });
    }
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();

    // 1. A pinned chain through node 1 (baseline traced work).
    let pin1 = || TaskOptions::default().with_demand(node_affinity(NodeId(1)));
    let mut f: ObjectRef<u64> = ctx.call_opts("inc", vec![Arg::value(&0u64).unwrap()], pin1()).unwrap();
    for _ in 0..2 {
        f = ctx.call_opts("inc", vec![Arg::from_ref(&f)], pin1()).unwrap();
    }
    assert_eq!(ctx.get_with_timeout(&f, LONG).unwrap(), 3);

    // 2. Straggler injection: every task body on node 2 pays 30ms.
    chaos::apply(&cluster, chaos::ChaosAction::DelayWorker(NodeId(2), Duration::from_millis(30)));
    let pin2 = TaskOptions::default().with_demand(node_affinity(NodeId(2)));
    let far: ObjectRef<u64> =
        ctx.call_opts("inc", vec![Arg::value(&9u64).unwrap()], pin2).unwrap();
    assert_eq!(ctx.get_with_timeout(&far, LONG).unwrap(), 10);

    // 3. Cancel a task that is provably mid-run.
    let spin: ObjectRef<u64> = ctx.call("spin_until_cancelled", vec![]).unwrap();
    assert!(wait_until(|| spinning.load(Ordering::SeqCst), LONG), "spinner never started");
    assert!(ctx.cancel_ref(&spin).unwrap());
    assert!(wait_for_counter(&cluster, names::TASKS_CANCELLED, 1, LONG));
    assert!(matches!(ctx.get_with_timeout(&spin, LONG), Err(RayError::Cancelled(_))));

    // 4. A deadline expiring mid-run (the body starts inside the budget
    //    and sleeps past it).
    let sleepy: ObjectRef<u64> = ctx
        .call_opts("outlive_deadline", vec![], TaskOptions::default().with_timeout(Duration::from_millis(300)))
        .unwrap();
    assert!(wait_until(|| napping.load(Ordering::SeqCst), LONG), "sleeper never started");
    assert!(wait_for_counter(&cluster, names::DEADLINE_EXCEEDED, 1, LONG));
    assert!(matches!(ctx.get_with_timeout(&sleepy, LONG), Err(RayError::DeadlineExceeded(_))));

    // 5. Kill the straggler node, restart it, drop every surviving
    //    replica of its output, and force lineage reconstruction (the
    //    producer is pinned there, so the re-execution lands on the
    //    restarted node — straggler delay and all).
    cluster.kill_node(NodeId(2));
    cluster.restart_node(NodeId(2)).unwrap();
    ctx.free(&[far.id()]).unwrap();
    assert_eq!(ctx.get_with_timeout(&far, LONG).unwrap(), 10, "reconstruction after the kill");

    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::TaskCancelled)
        .happened(TraceEventKind::TaskDeadlineExceeded)
        .happened(TraceEventKind::NodeDeclaredDead)
        .happened(TraceEventKind::Reconstructing);
    let sig = log.signature();
    cluster.shutdown();
    sig
}

#[test]
fn same_seed_cancel_chaos_runs_are_identical() {
    let a = traced_cancel_signature(0xCA11);
    let b = traced_cancel_signature(0xCA11);
    assert_eq!(a, b, "same-seed cancellation chaos must replay identically");
}
