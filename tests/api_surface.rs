//! API-surface and edge-case integration tests: the public behaviours a
//! downstream user depends on, beyond the core scenarios in
//! `end_to_end.rs`.

use std::time::Duration;

use bytes::Bytes;
use ray_repro::common::{RayConfig, RayError, Resources};
use ray_repro::ray::registry::RemoteResult;
use ray_repro::ray::task::{Arg, ObjectRef, TaskOptions};
use ray_repro::ray::{decode_arg, encode_return, ActorInstance, Cluster, RayContext};

fn cluster2() -> Cluster {
    Cluster::start(RayConfig::builder().nodes(2).workers_per_node(2).build()).unwrap()
}

#[test]
fn free_drops_replicas_but_lineage_reconstructs() {
    let cluster = cluster2();
    cluster.register_fn1("double", |x: u64| x * 2);
    let ctx = cluster.driver();
    let fut: ObjectRef<u64> = ctx.call("double", vec![Arg::value(&21u64).unwrap()]).unwrap();
    assert_eq!(ctx.get(&fut).unwrap(), 42);

    ctx.free(&[fut.id()]).unwrap();
    // Location entries are gone...
    assert!(cluster.gcs().client().get_object_locations(fut.id()).unwrap().is_empty());
    // ...but the object is a task output, so lineage brings it back.
    assert_eq!(ctx.get_with_timeout(&fut, Duration::from_secs(60)).unwrap(), 42);
    assert!(cluster.metrics().counter("tasks_reexecuted").get() >= 1);
    cluster.shutdown();
}

#[test]
fn free_of_put_objects_is_permanent() {
    let cluster = cluster2();
    let ctx = cluster.driver();
    let r = ctx.put(&7u8).unwrap();
    ctx.free(&[r.id()]).unwrap();
    match ctx.get_with_timeout(&r, Duration::from_millis(300)) {
        Err(RayError::Timeout) | Err(RayError::ObjectLost(_)) => {}
        other => panic!("freed put object should be gone, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn wait_refs_typed_wrapper() {
    let cluster = cluster2();
    cluster.register_fn1("sleepy", |ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        ms
    });
    let ctx = cluster.driver();
    let fast: ObjectRef<u64> = ctx.call("sleepy", vec![Arg::value(&1u64).unwrap()]).unwrap();
    let slow: ObjectRef<u64> =
        ctx.call("sleepy", vec![Arg::value(&1500u64).unwrap()]).unwrap();
    let (ready, pending) =
        ctx.wait_refs(&[fast, slow], 1, Duration::from_secs(10)).unwrap();
    assert_eq!(ready, vec![fast]);
    assert_eq!(pending, vec![slow]);
    cluster.shutdown();
}

#[test]
fn wait_on_empty_and_duplicate_sets() {
    let cluster = cluster2();
    let ctx = cluster.driver();
    let (ready, pending) = ctx.wait(&[], 1, Duration::from_millis(50)).unwrap();
    assert!(ready.is_empty() && pending.is_empty());

    let r = ctx.put(&1u8).unwrap();
    let (ready, pending) =
        ctx.wait(&[r.id(), r.id()], 2, Duration::from_secs(5)).unwrap();
    // Duplicates collapse; both requested slots resolve to the one id.
    assert_eq!(ready, vec![r.id()]);
    assert!(pending.is_empty());
    cluster.shutdown();
}

#[test]
fn object_ref_cast_checks_at_decode_time() {
    let cluster = cluster2();
    let ctx = cluster.driver();
    let r = ctx.put(&String::from("text")).unwrap();
    let as_string: String = ctx.get(&r).unwrap();
    assert_eq!(as_string, "text");
    // Casting to an incompatible type fails at decode, not silently.
    let wrong: ObjectRef<u64> = r.cast();
    assert!(matches!(ctx.get(&wrong), Err(RayError::Codec(_))));
    cluster.shutdown();
}

#[test]
fn multi_return_tasks() {
    let cluster = cluster2();
    cluster.register_raw("split", |_ctx: &RayContext, args: &[Bytes]| -> RemoteResult {
        let v: Vec<u64> = decode_arg(args, 0)?;
        let (lo, hi): (Vec<u64>, Vec<u64>) = v.iter().partition(|&&x| x < 10);
        Ok(vec![
            ray_codec::encode(&lo).map_err(|e| e.to_string())?,
            ray_codec::encode(&hi).map_err(|e| e.to_string())?,
        ])
    });
    let ctx = cluster.driver();
    let ids = ctx
        .submit(
            "split",
            vec![Arg::value(&vec![1u64, 20, 3, 40]).unwrap()],
            TaskOptions::default().returns(2),
        )
        .unwrap();
    assert_eq!(ids.len(), 2);
    let lo: Vec<u64> = ctx.get(&ObjectRef::from_id(ids[0])).unwrap();
    let hi: Vec<u64> = ctx.get(&ObjectRef::from_id(ids[1])).unwrap();
    assert_eq!(lo, vec![1, 3]);
    assert_eq!(hi, vec![20, 40]);
    cluster.shutdown();
}

#[test]
fn wrong_return_count_is_a_task_failure() {
    let cluster = cluster2();
    cluster.register_raw("one_value", |_ctx: &RayContext, _args: &[Bytes]| -> RemoteResult {
        encode_return(&1u8)
    });
    let ctx = cluster.driver();
    let ids = ctx
        .submit("one_value", vec![], TaskOptions::default().returns(3))
        .unwrap();
    for id in ids {
        let r: ObjectRef<u8> = ObjectRef::from_id(id);
        assert!(matches!(ctx.get(&r), Err(RayError::TaskFailed { .. })));
    }
    cluster.shutdown();
}

#[test]
fn unknown_actor_class_fails_creation_future() {
    let cluster = cluster2();
    let ctx = cluster.driver();
    let h = ctx.create_actor("NoSuchClass", vec![], TaskOptions::default()).unwrap();
    assert!(matches!(ctx.get(&h.ready()), Err(RayError::TaskFailed { .. })));
    cluster.shutdown();
}

#[test]
fn actor_handle_reconstructed_from_parts_works() {
    struct Echo;
    impl ActorInstance for Echo {
        fn call(&mut self, _c: &RayContext, m: &str, args: &[Bytes]) -> RemoteResult {
            match m {
                "echo" => {
                    let x: u64 = decode_arg(args, 0)?;
                    encode_return(&x)
                }
                other => Err(format!("no method {other}")),
            }
        }
    }
    let cluster = cluster2();
    cluster.register_actor_class("Echo", |_c, _a| Ok(Box::new(Echo)));
    let ctx = cluster.driver();
    let h = ctx.create_actor("Echo", vec![], TaskOptions::default()).unwrap();
    ctx.get(&h.ready()).unwrap();
    // Serialize the handle's parts (how handles travel between tasks).
    let rebuilt =
        ray_repro::ray::ActorHandle::from_parts(h.id(), h.ready().id());
    let f: ObjectRef<u64> =
        ctx.call_actor(&rebuilt, "echo", vec![Arg::value(&9u64).unwrap()]).unwrap();
    assert_eq!(ctx.get(&f).unwrap(), 9);
    cluster.shutdown();
}

#[test]
fn custom_resources_route_tasks() {
    let cluster = Cluster::start(
        RayConfig::builder()
            .nodes(2)
            .workers_per_node(2)
            .node_resources(Resources::cpus(2.0).with_custom("tpu", 1.0))
            .build(),
    )
    .unwrap();
    cluster.register_fn0("use_tpu", || 1u8);
    let ctx = cluster.driver();
    let opts = TaskOptions::default()
        .with_demand(Resources::none().with_custom("tpu", 1.0));
    let f: ObjectRef<u8> = ctx.call_opts("use_tpu", vec![], opts).unwrap();
    assert_eq!(ctx.get(&f).unwrap(), 1);
    // Demanding more than any node has never completes.
    let opts = TaskOptions::default()
        .with_demand(Resources::none().with_custom("tpu", 2.0));
    let f: ObjectRef<u8> = ctx.call_opts("use_tpu", vec![], opts).unwrap();
    let (ready, _) = ctx.wait(&[f.id()], 1, Duration::from_millis(300)).unwrap();
    assert!(ready.is_empty());
    cluster.shutdown();
}

#[test]
fn snapshot_and_timeline_via_public_api() {
    use ray_repro::ray::inspect::TimelineEvent;
    let cluster = cluster2();
    cluster.register_fn0("nop", || 0u8);
    let ctx = cluster.driver();
    let f: ObjectRef<u8> = ctx.call("nop", vec![]).unwrap();
    ctx.get(&f).unwrap();
    cluster
        .log_timeline(&TimelineEvent::TaskFinished { task: [3; 16], node: 0, micros: 42 })
        .unwrap();
    // The result is visible before the worker bumps the executed counter;
    // retry the snapshot until the count lands.
    let t0 = std::time::Instant::now();
    let mut snap = cluster.snapshot().unwrap();
    while snap.tasks.1 < 1 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
        snap = cluster.snapshot().unwrap();
    }
    assert_eq!(snap.nodes.len(), 2);
    assert!(snap.tasks.1 >= 1);
    assert_eq!(cluster.timeline().unwrap().len(), 1);
    cluster.shutdown();
}

#[test]
fn put_larger_than_store_capacity_is_rejected() {
    let mut cfg = RayConfig::builder().nodes(1).workers_per_node(1).build();
    cfg.object_store.capacity_bytes = 1024;
    let cluster = Cluster::start(cfg).unwrap();
    let ctx = cluster.driver();
    match ctx.put(&vec![0u8; 4096]) {
        Err(RayError::StoreFull { .. }) => {}
        other => panic!("expected StoreFull, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn values_survive_the_full_pipeline_bitwise() {
    // Tensors and blobs through put → remote task → get, byte-exact.
    use ray_repro::codec::tensor::TensorF64;
    use ray_repro::codec::Blob;
    let cluster = cluster2();
    cluster.register_raw("relay", |_ctx: &RayContext, args: &[Bytes]| -> RemoteResult {
        let blob: Blob = decode_arg(args, 0)?;
        encode_return(&blob)
    });
    let ctx = cluster.driver();
    let tensor = TensorF64::from_vec(vec![f64::MIN, -0.0, f64::MAX, 1.5e-300]);
    let blob = Blob(tensor.to_bytes().to_vec());
    let input = ctx.put(&blob).unwrap();
    let out: ObjectRef<Blob> = ctx.call("relay", vec![Arg::from_ref(&input)]).unwrap();
    let round_tripped = ctx.get(&out).unwrap();
    let back = TensorF64::from_bytes(&round_tripped.0).unwrap();
    assert_eq!(back, tensor);
    cluster.shutdown();
}
