//! Lineage regression for the stateful-edge chain (paper §4.2.3, Fig. 11b):
//! a `task → actor-method → task` dependency chain loses its mid-chain node,
//! and the event log must *prove* that recovery replayed only the methods
//! after the last checkpoint — not the whole method log.
//!
//! Setup: a normal task seeds the chain; its output feeds the first of 7
//! checkpointed actor methods (interval 3 ⇒ checkpoints at seq 3 and 6); a
//! final normal task consumes the 7th method's output. The actor's node is
//! killed abruptly after all 7 methods applied but with the 7th output
//! replicated nowhere else. Consuming it then forces: detector-driven
//! death declaration → actor rebuild → checkpoint restore at seq 6 →
//! replay of exactly one method → output re-stored → final task runs.

use bytes::Bytes;
use ray_repro::common::config::FaultConfig;
use ray_repro::common::metrics::names;
use ray_repro::common::trace::{TraceEntity, TraceEventKind};
use ray_repro::common::{NodeId, RayConfig};
use ray_repro::ray::registry::RemoteResult;
use ray_repro::ray::task::{Arg, ObjectRef, TaskOptions};
use ray_repro::ray::{
    decode_arg, encode_return, node_affinity, ActorInstance, Cluster, RayContext,
};
use std::time::{Duration, Instant};

struct Counter {
    total: i64,
}

impl ActorInstance for Counter {
    fn call(&mut self, _ctx: &RayContext, method: &str, args: &[Bytes]) -> RemoteResult {
        match method {
            "add" => {
                let x: i64 = decode_arg(args, 0)?;
                self.total += x;
                encode_return(&self.total)
            }
            "value" => encode_return(&self.total),
            other => Err(format!("no method {other}")),
        }
    }
    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.total.to_le_bytes().to_vec())
    }
    fn restore(&mut self, data: &[u8]) -> Result<(), String> {
        self.total = i64::from_le_bytes(data.try_into().map_err(|_| "bad checkpoint")?);
        Ok(())
    }
}

fn wait_for_counter(cluster: &Cluster, name: &str, min: u64, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cluster.metrics().counter(name).get() >= min {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn replay_is_bounded_by_the_last_checkpoint() {
    let mut cfg = RayConfig::builder().nodes(3).workers_per_node(2).seed(13).tracing(true).build();
    cfg.fault = FaultConfig {
        lineage_enabled: true,
        max_reconstruction_attempts: 10,
        actor_checkpoint_interval: Some(3),
        heartbeat_timeout: Duration::from_millis(250),
        ..FaultConfig::default()
    };
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("seed_val", |x: i64| x);
    cluster.register_fn1("double", |x: i64| x * 2);
    cluster.register_actor_class("Counter", |_ctx, args| {
        let start: i64 = decode_arg(args, 0)?;
        Ok(Box::new(Counter { total: start }))
    });
    let ctx = cluster.driver();

    // Head of the chain: a normal task whose output becomes the first
    // method argument (the task → actor-method data edge).
    let head: ObjectRef<i64> = ctx.call("seed_val", vec![Arg::value(&1i64).unwrap()]).unwrap();

    // The actor is pinned to node 1, which will die.
    let pin = TaskOptions::default().with_demand(node_affinity(NodeId(1)));
    let h = ctx.create_actor("Counter", vec![Arg::value(&0i64).unwrap()], pin).unwrap();
    ctx.get_with_timeout(&h.ready(), Duration::from_secs(30)).unwrap();

    // 7 methods; with interval 3 the last checkpoint lands at seq 6, so
    // exactly one method (seq 6, the 7th) sits past it.
    let mut adds: Vec<ObjectRef<i64>> = Vec::new();
    for i in 0..7 {
        let arg = if i == 0 { Arg::from_ref(&head) } else { Arg::value(&1i64).unwrap() };
        adds.push(ctx.call_actor(&h, "add", vec![arg]).unwrap());
    }
    // Sync without fetching any add output (a fetch would replicate it off
    // node 1 and defeat the loss): a read-only call queues behind the 7
    // adds, so its answer proves they all applied and both checkpoints
    // were cut.
    let settled: ObjectRef<i64> = ctx.call_actor_readonly(&h, "value", vec![]).unwrap();
    assert_eq!(ctx.get_with_timeout(&settled, Duration::from_secs(30)).unwrap(), 7);
    assert!(cluster.metrics().counter(names::CHECKPOINTS_TAKEN).get() >= 2);

    // Kill the actor's node with no cleanup; only the detector notices.
    cluster.kill_node_abrupt(NodeId(1));
    assert!(
        wait_for_counter(&cluster, names::NODES_DECLARED_DEAD, 1, Duration::from_secs(15)),
        "detector must declare the actor's node dead"
    );
    cluster.restart_node(NodeId(1)).unwrap();

    // Tail of the chain: a normal task consuming the 7th method's output
    // (the actor-method → task edge). That output died with node 1, so
    // this get can only succeed through rebuild + bounded replay.
    let tail: ObjectRef<i64> =
        ctx.call("double", vec![Arg::from_ref(&adds[6])]).unwrap();
    assert_eq!(
        ctx.get_with_timeout(&tail, Duration::from_secs(120)).unwrap(),
        14,
        "replay must re-store the 7th method's output exactly once"
    );

    let log = cluster.trace_log().unwrap();
    let actor = TraceEntity::Actor(h.id());
    let check = log.assert();
    check
        .happened_on(NodeId(1), TraceEventKind::NodeDeclaredDead)
        // The recovery protocol, in order: checkpoints were cut while the
        // actor lived, the rebuild restored one, replayed the tail, and
        // went live.
        .ordered(
            actor,
            &[
                TraceEventKind::CheckpointTaken,
                TraceEventKind::CheckpointRestored,
                TraceEventKind::MethodReplayed,
                TraceEventKind::ActorRebuilt,
            ],
        )
        .count_eq(actor, TraceEventKind::CheckpointRestored, 1)
        // THE bound under test: one method past the seq-6 checkpoint means
        // exactly one replay — not 7.
        .count_eq(actor, TraceEventKind::MethodReplayed, 1)
        .deps_fetched_before_running();

    // The restore came from the latest checkpoint, not an earlier one.
    let restored: Vec<&str> = log
        .events_for(actor)
        .iter()
        .filter(|e| e.kind == TraceEventKind::CheckpointRestored)
        .map(|e| e.detail.as_str())
        .collect();
    assert_eq!(restored, vec!["seq=6"], "rebuild must restore the seq-6 checkpoint");

    cluster.shutdown();
}
