//! Seeded chaos harness: fault schedules against live workloads.
//!
//! Unlike the targeted kill tests in `end_to_end.rs`, nothing here runs
//! the death protocol inline: nodes crash abruptly ([`Cluster::
//! kill_node_abrupt`]) or get partitioned off, and recovery happens only
//! because the heartbeat failure detector (paper §4.2.2's monitor)
//! notices the silence and runs the death protocol itself. Invariants
//! checked throughout:
//!
//! - every future resolves to the correct value (or a typed error);
//! - actor methods apply exactly once, in order — no duplicate side
//!   effects from replay;
//! - after `chaos::repair`, the cluster quiesces at full strength;
//! - the trace event log records the recovery protocol itself: death
//!   detected → lineage replay → object rematerialized, checkpoint
//!   restore before bounded method replay, dropped messages retried.
//!
//! Schedules are generated from fixed seeds, so a failure here reproduces
//! by rerunning the same test.

use bytes::Bytes;
use ray_repro::common::config::FaultConfig;
use ray_repro::common::metrics::names;
use ray_repro::common::trace::{TraceEntity, TraceEventKind};
use ray_repro::common::{NodeId, RayConfig};
use ray_repro::ray::chaos::{self, ChaosSchedule};
use ray_repro::ray::registry::RemoteResult;
use ray_repro::ray::task::{Arg, ObjectRef, TaskOptions};
use ray_repro::ray::{
    decode_arg, encode_return, node_affinity, ActorInstance, Cluster, RayContext,
};
use std::time::{Duration, Instant};

struct Counter {
    total: i64,
}

impl ActorInstance for Counter {
    fn call(&mut self, _ctx: &RayContext, method: &str, args: &[Bytes]) -> RemoteResult {
        match method {
            "add" => {
                let x: i64 = decode_arg(args, 0)?;
                self.total += x;
                encode_return(&self.total)
            }
            other => Err(format!("no method {other}")),
        }
    }
    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.total.to_le_bytes().to_vec())
    }
    fn restore(&mut self, data: &[u8]) -> Result<(), String> {
        self.total = i64::from_le_bytes(data.try_into().map_err(|_| "bad checkpoint")?);
        Ok(())
    }
}

fn register_counter(cluster: &Cluster) {
    cluster.register_actor_class("Counter", |_ctx, args| {
        let start: i64 = decode_arg(args, 0)?;
        Ok(Box::new(Counter { total: start }))
    });
}

/// Chaos config: detection tight enough to test (default is a generous
/// 2 s), checkpointing on, tracing on (every test here asserts on the
/// recovery event log), and a generous reconstruction budget — chaos can
/// lose the same producer more than once.
fn chaos_config(nodes: usize, heartbeat_timeout: Duration) -> RayConfig {
    let mut cfg =
        RayConfig::builder().nodes(nodes).workers_per_node(2).seed(7).tracing(true).build();
    cfg.fault = FaultConfig {
        lineage_enabled: true,
        max_reconstruction_attempts: 10,
        actor_checkpoint_interval: Some(3),
        heartbeat_timeout,
        ..FaultConfig::default()
    };
    cfg
}

/// Polls a metrics counter until it reaches `min` or `deadline` expires.
fn wait_for_counter(cluster: &Cluster, name: &str, min: u64, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cluster.metrics().counter(name).get() >= min {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

// ----------------------------------------------------------------------
// Detector-driven recovery from an abrupt crash.
// ----------------------------------------------------------------------

#[test]
fn abrupt_crash_is_discovered_and_recovered() {
    let cluster =
        Cluster::start(chaos_config(4, Duration::from_millis(250))).unwrap();
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();

    // Chain with a middle segment pinned to node 2, so those outputs live
    // only there. Keep a ref into the middle of the pinned segment.
    let mut fut: ObjectRef<u64> = ctx.call("inc", vec![Arg::value(&0u64).unwrap()]).unwrap();
    for _ in 0..9 {
        fut = ctx.call("inc", vec![Arg::from_ref(&fut)]).unwrap();
    }
    let pin = TaskOptions::default().with_demand(node_affinity(NodeId(2)));
    let mut mid = None;
    for i in 0..10 {
        fut = ctx.call_opts("inc", vec![Arg::from_ref(&fut)], pin.clone()).unwrap();
        if i == 4 {
            mid = Some(fut);
        }
    }
    let mid: ObjectRef<u64> = mid.unwrap();
    // Force the whole pinned segment to execute (and its outputs to be
    // stored on node 2) before the crash.
    assert_eq!(ctx.get_with_timeout(&fut, Duration::from_secs(30)).unwrap(), 20);

    // Crash: no cleanup, no announcement. Only heartbeats stop.
    cluster.kill_node_abrupt(NodeId(2));
    assert!(!cluster.fabric().is_alive(NodeId(2)));

    // Branch off the lost middle object; its reconstruction needs node 2
    // back (the producers are pinned), so it stays pending for now.
    let mut branch: ObjectRef<u64> =
        ctx.call("inc", vec![Arg::from_ref(&mid)]).unwrap();
    for _ in 0..4 {
        branch = ctx.call("inc", vec![Arg::from_ref(&branch)]).unwrap();
    }

    // The monitor must notice the silence on its own.
    assert!(
        wait_for_counter(&cluster, names::NODES_DECLARED_DEAD, 1, Duration::from_secs(15)),
        "detector never declared the crashed node dead"
    );
    assert!(cluster.metrics().counter(names::HEARTBEATS_MISSED).get() >= 1);
    assert!(!cluster.gcs().client().node_alive(NodeId(2)).unwrap());

    // Bring the slot back; pinned producers re-execute through lineage.
    cluster.restart_node(NodeId(2)).unwrap();
    assert_eq!(
        ctx.get_with_timeout(&branch, Duration::from_secs(120)).unwrap(),
        20, // mid = 15, plus 5 more incs
        "branch from the lost object must recover the exact value"
    );
    assert!(cluster.metrics().counter(names::TASKS_REEXECUTED).get() >= 1);
    assert_eq!(cluster.live_nodes(), 4);

    // The event log records the whole recovery arc. The lost mid-chain
    // object materialized, was claimed for reconstruction after the loss,
    // and materialized again; the death was detected (suspicion first,
    // then the declaration on the silent node); lineage resubmitted work;
    // and no task anywhere ran ahead of its inputs.
    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::HeartbeatMissed)
        .happened_on(NodeId(2), TraceEventKind::NodeDeclaredDead)
        .ordered(
            TraceEntity::Object(mid.id()),
            &[
                TraceEventKind::ObjectPut,
                TraceEventKind::Reconstructing,
                TraceEventKind::ObjectPut,
            ],
        )
        .happened(TraceEventKind::Resubmitted)
        .never(TraceEventKind::Failed)
        .deps_fetched_before_running();
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Partition = death from the majority's point of view.
// ----------------------------------------------------------------------

#[test]
fn isolated_node_is_declared_dead_and_its_actor_recovers() {
    let cluster =
        Cluster::start(chaos_config(4, Duration::from_millis(250))).unwrap();
    register_counter(&cluster);
    let ctx = cluster.driver();

    // Pin an actor to node 2 and drive some checkpointed state.
    let opts = TaskOptions::default().with_demand(node_affinity(NodeId(2)));
    let h = ctx.create_actor("Counter", vec![Arg::value(&0i64).unwrap()], opts).unwrap();
    ctx.get_with_timeout(&h.ready(), Duration::from_secs(30)).unwrap();
    assert_eq!(
        cluster.gcs().client().get_actor(h.id()).unwrap().unwrap().node,
        NodeId(2),
        "affinity demand must pin the actor"
    );
    for i in 1..=6i64 {
        let f: ObjectRef<i64> =
            ctx.call_actor(&h, "add", vec![Arg::value(&1i64).unwrap()]).unwrap();
        assert_eq!(ctx.get_with_timeout(&f, Duration::from_secs(30)).unwrap(), i);
    }
    assert!(cluster.metrics().counter(names::CHECKPOINTS_TAKEN).get() >= 1);

    // Cut node 2 off from every peer. The node itself is healthy — but it
    // cannot reach the majority, so its heartbeats stop arriving and the
    // majority side declares it dead.
    for peer in [0u32, 1, 3] {
        cluster.fabric().partition(NodeId(2), NodeId(peer));
    }
    assert!(
        wait_for_counter(&cluster, names::NODES_DECLARED_DEAD, 1, Duration::from_secs(15)),
        "detector never declared the isolated node dead"
    );
    // Declaration fences the minority side: from the cluster's view the
    // node is gone, exactly as if it had crashed.
    assert!(!cluster.fabric().is_alive(NodeId(2)));

    // Methods invoked while the actor is down queue at the router.
    let pending: Vec<ObjectRef<i64>> = (0..4)
        .map(|_| ctx.call_actor(&h, "add", vec![Arg::value(&1i64).unwrap()]).unwrap())
        .collect();

    // Heal the links and bring the slot back; the rebuild (pinned to node
    // 2 by the creation task's demand) restores the checkpoint, replays
    // the tail, and flushes the queue.
    for peer in [0u32, 1, 3] {
        cluster.fabric().heal(NodeId(2), NodeId(peer));
    }
    cluster.restart_node(NodeId(2)).unwrap();
    for (k, f) in pending.iter().enumerate() {
        assert_eq!(
            ctx.get_with_timeout(f, Duration::from_secs(120)).unwrap(),
            7 + k as i64,
            "state must continue exactly where the partition left it"
        );
    }
    assert_eq!(cluster.live_nodes(), 4);

    // The rebuild must have gone checkpoint-first: checkpoints cut while
    // the actor lived, exactly one restored, replay bounded by the
    // checkpoint interval (3) rather than the full 6-method log, and the
    // actor back on its feet.
    let log = cluster.trace_log().unwrap();
    let actor = TraceEntity::Actor(h.id());
    log.assert()
        .happened_on(NodeId(2), TraceEventKind::NodeDeclaredDead)
        .ordered(
            actor,
            &[
                TraceEventKind::CheckpointTaken,
                TraceEventKind::CheckpointRestored,
                TraceEventKind::ActorRebuilt,
            ],
        )
        .count_eq(actor, TraceEventKind::CheckpointRestored, 1)
        .count_at_most(actor, TraceEventKind::MethodReplayed, 2)
        .deps_fetched_before_running();
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Generated schedules: 3 fixed seeds, mixed workloads, quiesce.
// ----------------------------------------------------------------------

fn run_seeded_schedule(seed: u64) {
    let nodes = 4u32;
    let window = Duration::from_millis(2500);
    let schedule = ChaosSchedule::generate(seed, nodes, window, 3);
    // Determinism: the same seed must always produce the same schedule.
    assert_eq!(schedule, ChaosSchedule::generate(seed, nodes, window, 3));
    assert!(!schedule.events().is_empty());

    let cluster =
        Cluster::start(chaos_config(nodes as usize, Duration::from_millis(200))).unwrap();
    cluster.register_fn1("slow_inc", |x: u64| {
        std::thread::sleep(Duration::from_millis(3));
        x + 1
    });
    register_counter(&cluster);

    std::thread::scope(|s| {
        let cluster = &cluster;
        let schedule = &schedule;
        s.spawn(move || schedule.run(cluster));

        // Workload 1: a dependency chain of tasks. Every link must carry
        // the exact value across kills, crashes, and partitions.
        s.spawn(move || {
            let ctx = cluster.driver();
            let mut fut: ObjectRef<u64> =
                ctx.call("slow_inc", vec![Arg::value(&0u64).unwrap()]).unwrap();
            for _ in 0..79 {
                fut = ctx.call("slow_inc", vec![Arg::from_ref(&fut)]).unwrap();
            }
            assert_eq!(
                ctx.get_with_timeout(&fut, Duration::from_secs(120)).unwrap(),
                80,
                "seed {seed}: task chain must survive the schedule"
            );
        });

        // Workload 2: a stateful actor driven synchronously. Exactly-once,
        // in-order application means call i returns exactly i.
        s.spawn(move || {
            let ctx = cluster.driver();
            let h = ctx
                .create_actor("Counter", vec![Arg::value(&0i64).unwrap()], TaskOptions::default())
                .unwrap();
            ctx.get_with_timeout(&h.ready(), Duration::from_secs(120)).unwrap();
            for i in 1..=30i64 {
                let f: ObjectRef<i64> =
                    ctx.call_actor(&h, "add", vec![Arg::value(&1i64).unwrap()]).unwrap();
                assert_eq!(
                    ctx.get_with_timeout(&f, Duration::from_secs(120)).unwrap(),
                    i,
                    "seed {seed}: methods must apply exactly once, in order"
                );
            }
        });
    });

    // Quiesce: restore full strength, then prove every node schedules and
    // serves objects again.
    chaos::repair(&cluster, nodes);
    assert_eq!(cluster.live_nodes(), nodes as usize, "seed {seed}");
    let ctx = cluster.driver();
    for n in 0..nodes {
        let pin = TaskOptions::default().with_demand(node_affinity(NodeId(n)));
        let f: ObjectRef<u64> = ctx
            .call_opts("slow_inc", vec![Arg::value(&u64::from(n)).unwrap()], pin)
            .unwrap();
        assert_eq!(
            ctx.get_with_timeout(&f, Duration::from_secs(30)).unwrap(),
            u64::from(n) + 1,
            "seed {seed}: node {n} must be live after repair"
        );
    }
    // The whole episode — kills, partitions, recovery — must leave the
    // lock acquisition-order graph acyclic (debug builds only; the
    // detector compiles out in release).
    ray_repro::common::sync::assert_acyclic();

    // Whatever the schedule did, the causal invariant holds across every
    // task the run traced: dependencies landed before execution started.
    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::Submitted)
        .happened(TraceEventKind::Finished)
        .deps_fetched_before_running();
    cluster.shutdown();
}

#[test]
fn seeded_schedule_11_is_survivable() {
    run_seeded_schedule(11);
}

#[test]
fn seeded_schedule_42_is_survivable() {
    run_seeded_schedule(42);
}

#[test]
fn seeded_schedule_1337_is_survivable() {
    run_seeded_schedule(1337);
}

// ----------------------------------------------------------------------
// Message-level chaos: seeded drops end to end.
// ----------------------------------------------------------------------

#[test]
fn workloads_survive_seeded_message_drops() {
    let mut cfg = chaos_config(3, Duration::from_secs(2));
    // One in five data/heartbeat messages dropped, deterministically.
    cfg.transport.chaos.drop_probability = 0.2;
    cfg.transport.chaos.seed = 0xDECAF;
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("double", |x: u64| x * 2);
    let ctx = cluster.driver();

    // Pin producers off the driver's node so every `get` crosses the
    // lossy wire and exercises the transfer retry path.
    let pin = TaskOptions::default().with_demand(node_affinity(NodeId(1)));
    let futs: Vec<ObjectRef<u64>> = (0..40)
        .map(|i| {
            ctx.call_opts("double", vec![Arg::value(&(i as u64)).unwrap()], pin.clone())
                .unwrap()
        })
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(
            ctx.get_with_timeout(f, Duration::from_secs(60)).unwrap(),
            2 * i as u64,
            "drops are retried, never surfaced as wrong answers"
        );
    }
    assert!(cluster.fabric().message_drop_count() > 0, "p=0.2 must drop something");
    assert!(cluster.metrics().counter(names::MESSAGES_DROPPED).get() > 0);
    assert!(cluster.metrics().counter(names::TRANSFER_RETRIES).get() > 0);
    // Nothing here should have looked like a node failure.
    assert_eq!(cluster.live_nodes(), 3);

    // The lossy wire shows up in the trace: drops recorded by the fabric,
    // retries by the transfer manager — and not a single declared death
    // or reconstruction, because retries absorbed every drop.
    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::MessageDropped)
        .happened(TraceEventKind::TransferRetry)
        .happened(TraceEventKind::ObjectTransferred)
        .never(TraceEventKind::NodeDeclaredDead)
        .never(TraceEventKind::Reconstructing)
        .deps_fetched_before_running();
    cluster.shutdown();
}

/// Soak iteration for the lock-order detector: repeated
/// kill → partition → recover episodes under live workload traffic, with
/// the acquisition-order graph checked for cycles after every episode.
/// A single run only witnesses one interleaving; iterating accumulates
/// edges from many (the graph is process-global and only ever grows), so a
/// latent inversion anywhere on the failure-handling paths shows up here
/// as a cycle even if no run actually deadlocked.
#[test]
fn lock_graph_stays_acyclic_across_chaos_soak() {
    let nodes = 3u32;
    let cluster =
        Cluster::start(chaos_config(nodes as usize, Duration::from_millis(200))).unwrap();
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();

    for episode in 0u32..4 {
        // Rotate the victim among the non-root nodes.
        let victim = NodeId(1 + episode % (nodes - 1));
        let other = NodeId(1 + (episode + 1) % (nodes - 1));

        // Keep tasks flowing while the fault is live so the episode
        // exercises the reconstruction and rerouting lock paths.
        let fut: ObjectRef<u64> =
            ctx.call("inc", vec![Arg::value(&u64::from(episode)).unwrap()]).unwrap();

        chaos::apply(&cluster, chaos::ChaosAction::KillAbrupt(victim));
        chaos::apply(&cluster, chaos::ChaosAction::Partition(NodeId(0), other));
        assert_eq!(
            ctx.get_with_timeout(&fut, Duration::from_secs(120)).unwrap(),
            u64::from(episode) + 1,
            "episode {episode}: work must survive the fault"
        );

        chaos::apply(&cluster, chaos::ChaosAction::Heal(NodeId(0), other));
        chaos::repair(&cluster, nodes);
        assert_eq!(cluster.live_nodes(), nodes as usize, "episode {episode}");

        // After every kill/partition/recover episode the global
        // acquisition-order graph must still be a DAG.
        ray_repro::common::sync::assert_acyclic();
    }

    cluster.shutdown();
    ray_repro::common::sync::assert_acyclic();
}
