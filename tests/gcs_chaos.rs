//! Control-plane chaos: the GCS itself is the fault target.
//!
//! The node-level chaos suite (`chaos.rs`) assumes the control plane
//! stays up while nodes die. Here the assumption is inverted: chain
//! replicas crash, whole shards are lost, and the flusher is stalled —
//! all while workloads and journaled control-plane writes keep flowing.
//! Invariants checked throughout:
//!
//! - every write the GCS acknowledged stays readable (read-your-writes,
//!   no lost lineage), verified by [`ConsistencyChecker`];
//! - a whole-shard loss recovers from the flushed disk log, and the trace
//!   pins the exact arc: replica crash → reconfiguration → recovery;
//! - two same-seed runs through shard loss produce identical trace
//!   signatures — control-plane recovery is as deterministic as the rest
//!   of the system;
//! - the lock acquisition-order graph stays acyclic across the episode.

use bytes::Bytes;
use ray_repro::common::config::{FaultConfig, GcsConfig};
use ray_repro::common::trace::{TraceEntity, TraceEventKind};
use ray_repro::common::{ObjectId, RayConfig, ShardId, TaskId};
use ray_repro::gcs::check::ConsistencyChecker;
use ray_repro::ray::chaos::{self, ChaosAction, ChaosSchedule};
use ray_repro::ray::task::{Arg, ObjectRef};
use ray_repro::ray::Cluster;
use std::time::Duration;

/// Cluster config for control-plane chaos: a single replicated shard so
/// every control write lands on the chain under attack, tracing on, and
/// lineage enabled so recovery has something to lose.
fn gcs_chaos_config(nodes: usize, seed: u64) -> RayConfig {
    let mut cfg =
        RayConfig::builder().nodes(nodes).workers_per_node(2).seed(seed).tracing(true).build();
    cfg.gcs = GcsConfig { num_shards: 1, chain_length: 2, ..GcsConfig::default() };
    cfg.fault = FaultConfig {
        lineage_enabled: true,
        heartbeat_timeout: Duration::from_millis(500),
        ..FaultConfig::default()
    };
    cfg
}

// ----------------------------------------------------------------------
// The acceptance scenario: whole-shard loss mid-workload, recovery from
// the flushed disk log, trace-pinned arc, deterministic signature.
// ----------------------------------------------------------------------

fn run_shard_loss_scenario(seed: u64) -> String {
    let cluster = Cluster::start(gcs_chaos_config(2, seed)).unwrap();
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();
    let checker = ConsistencyChecker::new(cluster.gcs().client());

    // Phase 1: live workload plus journaled control-plane writes. Task
    // IDs are derived from the loop index so the journal is identical
    // across same-seed runs.
    let mut fut: ObjectRef<u64> = ctx.call("inc", vec![Arg::value(&0u64).unwrap()]).unwrap();
    for _ in 0..9 {
        fut = ctx.call("inc", vec![Arg::from_ref(&fut)]).unwrap();
    }
    assert_eq!(ctx.get_with_timeout(&fut, Duration::from_secs(30)).unwrap(), 10);
    let tasks: Vec<TaskId> = (0..20).map(|_| TaskId::random()).collect();
    for (i, t) in tasks.iter().enumerate() {
        checker.put_task(*t, Bytes::from(vec![i as u8; 32])).unwrap();
        checker.put_object_lineage(ObjectId::random(), *t).unwrap();
    }

    // Persist the control state (and the trace batches buffered so far),
    // then kill every replica of the only shard. Until the chain master's
    // all-dead streak crosses the recovery threshold, the control plane
    // is simply gone.
    cluster.flush_traces().unwrap();
    cluster.gcs().flush_all_to_disk(0).unwrap();
    chaos::apply(&cluster, ChaosAction::CrashGcsShard(ShardId(0)));

    // Phase 2: acknowledged-write traffic drives detection; the client
    // retry budget absorbs the outage window. Then the task workload must
    // run to completion against the rebuilt shard.
    for i in 20..30u8 {
        checker.put_task(TaskId::random(), Bytes::from(vec![i; 32])).unwrap();
    }
    let mut fut2: ObjectRef<u64> = ctx.call("inc", vec![Arg::value(&100u64).unwrap()]).unwrap();
    for _ in 0..9 {
        fut2 = ctx.call("inc", vec![Arg::from_ref(&fut2)]).unwrap();
    }
    assert_eq!(
        ctx.get_with_timeout(&fut2, Duration::from_secs(60)).unwrap(),
        110,
        "seed {seed}: workload must complete against the recovered shard"
    );

    // The shard came back replicated, and every acknowledged write —
    // including all pre-crash flushed lineage — is still readable.
    assert_eq!(cluster.gcs().shard(ShardId(0)).replica_count(), 2, "seed {seed}");
    assert!(cluster.gcs().shard(ShardId(0)).reconfigurations() >= 1, "seed {seed}");
    let violations = checker.verify().unwrap();
    assert!(violations.is_empty(), "seed {seed}: lost acknowledged writes: {violations:?}");

    // The trace pins the recovery arc on the shard entity, in order:
    // replicas crashed → chain reconfigured → state replayed from disk.
    let log = cluster.trace_log().unwrap();
    log.assert()
        .ordered(
            TraceEntity::Shard(ShardId(0)),
            &[
                TraceEventKind::GcsReplicaCrashed,
                TraceEventKind::GcsReconfigured,
                TraceEventKind::GcsShardRecovered,
            ],
        )
        .happened(TraceEventKind::GcsShardRecovered)
        .deps_fetched_before_running();
    ray_repro::common::sync::assert_acyclic();
    let sig = log.signature();
    assert!(!sig.is_empty());
    cluster.shutdown();
    sig
}

#[test]
fn whole_shard_loss_recovers_from_disk_mid_workload() {
    let first = run_shard_loss_scenario(23);
    let second = run_shard_loss_scenario(23);
    assert_eq!(
        first, second,
        "two same-seed runs through whole-shard loss + disk recovery must \
         produce the same canonical event sequence"
    );
}

// ----------------------------------------------------------------------
// Flusher stall: memory grows unbounded while stalled, drains on resume.
// ----------------------------------------------------------------------

#[test]
fn stalled_flusher_backs_up_memory_until_resumed() {
    let mut cfg = gcs_chaos_config(2, 5);
    cfg.gcs.flush_enabled = true;
    cfg.gcs.flush_threshold_entries = 50;
    cfg.gcs.flush_interval = Duration::from_millis(5);
    let cluster = Cluster::start(cfg).unwrap();
    let client = cluster.gcs().client();

    chaos::apply(&cluster, ChaosAction::StallFlusher);
    assert!(cluster.gcs().flusher_stalled());
    for i in 0..400u32 {
        client.put_task(TaskId::random(), Bytes::from(vec![(i % 251) as u8; 64])).unwrap();
    }
    // Well past the 50-entry high-water mark, yet nothing moved to disk.
    assert_eq!(cluster.gcs().entries_flushed(), 0, "stalled flusher must not flush");
    let stalled_resident = cluster.gcs().resident_bytes();
    assert!(stalled_resident > 400 * 64 / 2, "writes must pile up in memory");

    chaos::apply(&cluster, ChaosAction::ResumeFlusher);
    assert!(!cluster.gcs().flusher_stalled());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while cluster.gcs().entries_flushed() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(cluster.gcs().entries_flushed() > 0, "resumed flusher must drain the backlog");
    assert!(
        cluster.gcs().resident_bytes() < stalled_resident,
        "flushing must shrink resident control-plane state"
    );
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Seeded soak: mixed node + control-plane faults under live traffic.
// ----------------------------------------------------------------------

fn run_gcs_seeded_schedule(seed: u64) {
    let nodes = 4u32;
    let window = Duration::from_millis(2500);
    // Replica crashes and flusher stalls mix freely with node faults;
    // whole-shard crashes are exercised by the targeted scenario above
    // (they pause the control plane for the recovery threshold, which a
    // soak's unpinned timing would turn into flakes).
    let schedule = ChaosSchedule::generate_with_gcs(seed, nodes, 1, window, 4, false);
    assert_eq!(schedule, ChaosSchedule::generate_with_gcs(seed, nodes, 1, window, 4, false));
    assert!(!schedule.events().is_empty());

    let mut cfg = gcs_chaos_config(nodes as usize, 7);
    cfg.fault.heartbeat_timeout = Duration::from_millis(250);
    cfg.fault.max_reconstruction_attempts = 10;
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("slow_inc", |x: u64| {
        std::thread::sleep(Duration::from_millis(3));
        x + 1
    });
    let checker = ConsistencyChecker::new(cluster.gcs().client());

    std::thread::scope(|s| {
        let cluster = &cluster;
        let schedule = &schedule;
        let checker = &checker;
        s.spawn(move || schedule.run(cluster));

        // Workload 1: a task dependency chain across the fault window.
        s.spawn(move || {
            let ctx = cluster.driver();
            let mut fut: ObjectRef<u64> =
                ctx.call("slow_inc", vec![Arg::value(&0u64).unwrap()]).unwrap();
            for _ in 0..59 {
                fut = ctx.call("slow_inc", vec![Arg::from_ref(&fut)]).unwrap();
            }
            assert_eq!(
                ctx.get_with_timeout(&fut, Duration::from_secs(120)).unwrap(),
                60,
                "seed {seed}: task chain must survive control-plane chaos"
            );
        });

        // Workload 2: journaled control-plane writes through the window.
        s.spawn(move || {
            for i in 0..60u8 {
                let t = TaskId::random();
                checker.put_task(t, Bytes::from(vec![i; 16])).unwrap();
                checker.put_object_lineage(ObjectId::random(), t).unwrap();
                std::thread::sleep(Duration::from_millis(20));
            }
        });
    });

    chaos::repair(&cluster, nodes);
    assert_eq!(cluster.live_nodes(), nodes as usize, "seed {seed}");
    assert!(!cluster.gcs().flusher_stalled(), "repair must resume the flusher");
    for shard in 0..cluster.gcs().num_shards() {
        assert_eq!(
            cluster.gcs().shard(ShardId(shard as u32)).replica_count(),
            2,
            "seed {seed}: shard {shard} must be back at full replication"
        );
    }

    // Every write the GCS acknowledged during the chaos window must still
    // read back exactly — across replica crashes and reconfigurations.
    let violations = checker.verify().unwrap();
    assert!(violations.is_empty(), "seed {seed}: lost acknowledged writes: {violations:?}");
    ray_repro::common::sync::assert_acyclic();

    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::Submitted)
        .happened(TraceEventKind::Finished)
        .deps_fetched_before_running();
    cluster.shutdown();
}

#[test]
fn gcs_seeded_schedule_19_is_survivable() {
    run_gcs_seeded_schedule(19);
}

#[test]
fn gcs_seeded_schedule_77_is_survivable() {
    run_gcs_seeded_schedule(77);
}

// ----------------------------------------------------------------------
// Replica crash (not whole-shard): reconfiguration is invisible to
// clients and leaves a trace.
// ----------------------------------------------------------------------

#[test]
fn replica_crash_reconfigures_without_client_visible_errors() {
    let cluster = Cluster::start(gcs_chaos_config(2, 9)).unwrap();
    let checker = ConsistencyChecker::new(cluster.gcs().client());
    for i in 0..10u8 {
        checker.put_task(TaskId::random(), Bytes::from(vec![i; 16])).unwrap();
    }
    chaos::apply(&cluster, ChaosAction::CrashGcsReplica(ShardId(0), 0));
    for i in 10..20u8 {
        checker.put_task(TaskId::random(), Bytes::from(vec![i; 16])).unwrap();
    }
    assert!(checker.verify().unwrap().is_empty());
    // The splice repaired the chain without a disk rebuild.
    assert!(cluster.gcs().shard(ShardId(0)).reconfigurations() >= 1);
    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::GcsReplicaCrashed)
        .never(TraceEventKind::GcsShardRecovered);
    cluster.shutdown();
}
