//! Serving-layer chaos suite: the replica pool under replica and
//! control-plane failures.
//!
//! Exercises the self-healing contract end to end against live clusters:
//! - a seeded soak kills a replica's node *and* a whole GCS shard under
//!   sustained closed-loop load — no admitted request with deadline
//!   budget remaining may fail, the p99 blip must be bounded, and the
//!   killed replica must travel the full recovery arc
//!   (`replica_spawned` → `replica_unhealthy` → `actor_rebuilt` →
//!   re-admission);
//! - the same kill/restart scenario replayed under one seed produces an
//!   identical trace signature;
//! - hedged requests never duplicate side effects: the losing attempt is
//!   cancelled before its method can be logged (seed-swept, with the
//!   replicas' own request counters as the side-effect witness);
//! - SLO violations are traced and scale-down retires a replica.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ray_repro::common::config::FaultConfig;
use ray_repro::common::metrics::names;
use ray_repro::common::trace::{TraceEntity, TraceEventKind};
use ray_repro::common::{NodeId, RayConfig, RayError, ShardId};
use ray_repro::ray::Cluster;
use ray_repro::rl::serving::{pool_config, register, ServingWorkload};
use ray_repro::serve::{AutoscaleConfig, HedgeConfig, ReplicaPool};

/// A small, fixed-cost workload: spin count is a constant (not wall-clock
/// calibrated) so the same seed schedules the same work.
fn tiny_workload() -> ServingWorkload {
    ServingWorkload { state_bytes: 256, batch: 2, eval_spin: 500, rest_text_encoding: false }
}

fn payload(workload: &ServingWorkload, round: u64) -> Vec<u8> {
    let mut p = vec![0u8; workload.state_bytes * workload.batch];
    p.iter_mut().zip(round.to_le_bytes()).for_each(|(b, t)| *b = t);
    p
}

fn wait_until(mut pred: impl FnMut() -> bool, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Aggregated outcome of one closed-loop load phase.
#[derive(Default)]
struct Phase {
    ok: u64,
    shed: u64,
    failed: u64,
    errors: Vec<String>,
    latencies_us: Vec<u64>,
}

impl Phase {
    fn p99(&self) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * 0.99).round() as usize;
        self.latencies_us.get(idx).copied().unwrap_or(0)
    }
}

/// Drives `clients` closed-loop threads at the pool for `window`.
fn run_load(pool: &ReplicaPool, workload: &ServingWorkload, clients: usize, window: Duration) -> Phase {
    let results: Vec<Phase> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut phase = Phase::default();
                    let t0 = Instant::now();
                    let mut round = client as u64;
                    while t0.elapsed() < window {
                        let sent = Instant::now();
                        match pool.request(payload(workload, round)) {
                            Ok(_) => {
                                phase.ok += 1;
                                phase.latencies_us.push(sent.elapsed().as_micros() as u64);
                            }
                            Err(RayError::Overloaded(_)) => phase.shed += 1,
                            Err(e) => {
                                phase.failed += 1;
                                phase.errors.push(e.to_string());
                            }
                        }
                        round += clients as u64;
                    }
                    phase
                })
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().ok()).collect()
    });
    let mut total = Phase::default();
    for r in results {
        total.ok += r.ok;
        total.shed += r.shed;
        total.failed += r.failed;
        total.errors.extend(r.errors);
        total.latencies_us.extend(r.latencies_us);
    }
    total.latencies_us.sort_unstable();
    total
}

// ----------------------------------------------------------------------
// Soak: replica-node kill + whole-GCS-shard kill under closed-loop load.
// ----------------------------------------------------------------------

#[test]
fn serve_pool_survives_replica_and_gcs_chaos() {
    let mut cfg =
        RayConfig::builder().nodes(4).workers_per_node(2).seed(0xE57).tracing(true).build();
    cfg.fault = FaultConfig {
        lineage_enabled: true,
        max_reconstruction_attempts: 10,
        actor_checkpoint_interval: Some(8),
        ..FaultConfig::default()
    };
    let cluster = Arc::new(Cluster::start(cfg).unwrap());
    register(&cluster);
    let workload = tiny_workload();
    let mut pool_cfg = pool_config(&workload).unwrap();
    pool_cfg.replicas_min = 3;
    pool_cfg.replicas_max = 4;
    // A generous deadline makes the zero-failures assertion sharp: any
    // failure below means the pool gave up with budget left, not that a
    // request ran out of time.
    pool_cfg.request_timeout = Duration::from_secs(10);
    // ...but no single attempt may pin a request for that long: a node
    // death racing the method log can orphan an in-flight attempt, and
    // the router must abandon it and fail over within the budget.
    pool_cfg.attempt_timeout = Some(Duration::from_secs(1));
    pool_cfg.shed_watermark = 256;
    pool_cfg.probe_timeout = Duration::from_millis(100);
    pool_cfg.hedge = Some(HedgeConfig {
        percentile: 0.9,
        min: Duration::from_millis(1),
        max: Duration::from_millis(10),
    });
    pool_cfg.slo = Some(Duration::from_millis(500));
    pool_cfg.autoscale = AutoscaleConfig {
        enabled: true,
        scale_up_depth: 8.0,
        scale_down_depth: 0.0, // never retire: keep the recovery arc clean
        cooldown: Duration::from_millis(100),
    };
    pool_cfg.monitor_interval = Some(Duration::from_millis(10));
    let pool = ReplicaPool::deploy(&cluster, pool_cfg).unwrap();

    let victim =
        pool.replicas().into_iter().find(|r| r.node != NodeId(0)).expect("replica off node 0");

    // Phase A: steady state.
    let steady = run_load(&pool, &workload, 3, Duration::from_millis(400));
    assert!(steady.ok > 0, "steady phase served nothing");
    assert_eq!(steady.failed, 0, "steady phase failed requests");

    // Phase B: kill the victim replica's node, then a whole GCS shard,
    // while the same closed-loop load keeps running.
    let chaos = std::thread::scope(|scope| {
        let loader = scope.spawn(|| run_load(&pool, &workload, 3, Duration::from_millis(900)));
        std::thread::sleep(Duration::from_millis(100));
        cluster.kill_node(victim.node);
        std::thread::sleep(Duration::from_millis(150));
        cluster.gcs().crash_shard(ShardId(0));
        std::thread::sleep(Duration::from_millis(200));
        cluster.gcs().heal_all();
        std::thread::sleep(Duration::from_millis(100));
        cluster.restart_node(victim.node).unwrap();
        loader.join().unwrap()
    });
    assert!(chaos.ok > 0, "chaos phase served nothing");
    assert_eq!(
        chaos.failed, 0,
        "chaos phase failed {} requests that still had deadline budget: {:?}",
        chaos.failed, chaos.errors
    );

    // The monitor's probes must re-admit the rebuilt replica.
    assert!(
        wait_until(|| pool.healthy_count() >= pool.replicas().len().min(3), Duration::from_secs(15)),
        "replicas never returned to healthy after repair: {:?}",
        pool.replicas()
    );

    // Phase C: recovered. The p99 blip is bounded — after recovery the
    // tail returns to the same order of magnitude as steady state.
    let recovered = run_load(&pool, &workload, 3, Duration::from_millis(400));
    assert_eq!(recovered.failed, 0, "recovered phase failed requests");
    let bound = (steady.p99().saturating_mul(20)).max(250_000);
    assert!(
        recovered.p99() <= bound,
        "p99 did not recover: steady={}us recovered={}us",
        steady.p99(),
        recovered.p99()
    );

    cluster.flush_traces().unwrap();
    let log = cluster.trace_log().unwrap();
    // The killed replica travels the full recovery arc: spawned at
    // deploy, drained when its node died, rebuilt by core (checkpoint +
    // replay), then re-admitted by a health probe.
    log.assert()
        .ordered(
            TraceEntity::Actor(victim.actor),
            &[
                TraceEventKind::ReplicaSpawned,
                TraceEventKind::ReplicaUnhealthy,
                TraceEventKind::ActorRebuilt,
                TraceEventKind::ReplicaSpawned,
            ],
        )
        .happened(TraceEventKind::ReplicaSpawned)
        .happened(TraceEventKind::ReplicaUnhealthy);
    // Failovers and hedges both route around the dead replica; which one
    // catches a given request depends on timing, so only their sum is
    // meaningful — and even it can be zero if no request was in flight at
    // the kill. The hard guarantees asserted above are zero failures and
    // the recovery arc.
    assert!(cluster.metrics().counter(names::SERVE_REQUESTS).get() > 0);

    pool.shutdown();
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Determinism: the same seed replays the same recovery, byte for byte.
// ----------------------------------------------------------------------

/// One fixed kill/rebuild/re-admit scenario with a *fixed* number of
/// submitted calls, so task identities line up run over run. All waiting
/// between steps uses trace-silent registry reads
/// ([`Cluster::actor_node`]), never extra probe calls.
fn recovery_scenario(seed: u64) -> String {
    let mut cfg =
        RayConfig::builder().nodes(3).workers_per_node(2).seed(seed).tracing(true).build();
    cfg.fault = FaultConfig {
        lineage_enabled: true,
        max_reconstruction_attempts: 10,
        actor_checkpoint_interval: Some(3),
        ..FaultConfig::default()
    };
    let cluster = Arc::new(Cluster::start(cfg).unwrap());
    register(&cluster);
    let workload = tiny_workload();
    let mut pool_cfg = pool_config(&workload).unwrap();
    pool_cfg.replicas_max = 2; // min 2: a fixed two-replica set
    pool_cfg.probe_timeout = Duration::from_secs(2);
    let pool = ReplicaPool::deploy(&cluster, pool_cfg).unwrap();
    let victim =
        pool.replicas().into_iter().find(|r| r.node != NodeId(0)).expect("replica off node 0");

    // Six requests round-robin to exactly three per replica; with a
    // checkpoint interval of three, both replicas checkpoint.
    for round in 0..6u64 {
        pool.request(payload(&workload, round)).unwrap();
    }

    cluster.kill_node(victim.node);
    assert!(
        wait_until(|| cluster.actor_node(victim.actor).is_none(), Duration::from_secs(10)),
        "victim never left the Alive state"
    );
    // Exactly one probe round while the node is down: the victim's probe
    // deterministically times out and drains it from routing.
    pool.probe_now();
    assert_eq!(pool.healthy_count(), 1);

    cluster.restart_node(victim.node).unwrap();
    assert!(
        wait_until(|| cluster.actor_node(victim.actor).is_some(), Duration::from_secs(15)),
        "victim was never rebuilt"
    );
    // Exactly one probe round after the rebuild: the victim answers and
    // is re-admitted.
    pool.probe_now();
    assert_eq!(pool.healthy_count(), 2);

    // Two post-recovery requests exercise both replicas again.
    for round in 6..8u64 {
        pool.request(payload(&workload, round)).unwrap();
    }

    cluster.flush_traces().unwrap();
    let log = cluster.trace_log().unwrap();
    log.assert()
        .ordered(
            TraceEntity::Actor(victim.actor),
            &[
                TraceEventKind::ReplicaSpawned,
                TraceEventKind::ReplicaUnhealthy,
                TraceEventKind::ActorRebuilt,
                TraceEventKind::ReplicaSpawned,
            ],
        )
        .happened(TraceEventKind::CheckpointTaken)
        .happened(TraceEventKind::CheckpointRestored)
        .count_eq(TraceEntity::Actor(victim.actor), TraceEventKind::ReplicaUnhealthy, 1);
    let signature = log.signature();
    pool.shutdown();
    cluster.shutdown();
    signature
}

#[test]
fn serve_recovery_signature_is_deterministic() {
    let first = recovery_scenario(7);
    let second = recovery_scenario(7);
    assert_eq!(first, second, "same seed, different serve recovery signatures");
}

// ----------------------------------------------------------------------
// Hedging: the losing attempt is cancelled, never double-counted.
// ----------------------------------------------------------------------

/// Property, swept over seeds: with one replica straggling far past the
/// hedge trigger, every request still yields exactly one result and the
/// replicas' own request counters sum to exactly the number of delivered
/// results — a hedge loser's method is cancelled *before* it is logged,
/// so it can neither execute nor replay.
#[test]
fn hedged_requests_never_duplicate_side_effects() {
    for seed in [11u64, 29, 47] {
        let cfg =
            RayConfig::builder().nodes(3).workers_per_node(2).seed(seed).tracing(true).build();
        let cluster = Arc::new(Cluster::start(cfg).unwrap());
        register(&cluster);
        let workload = tiny_workload();
        let mut pool_cfg = pool_config(&workload).unwrap();
        pool_cfg.replicas_max = 2;
        pool_cfg.request_timeout = Duration::from_secs(10);
        pool_cfg.hedge = Some(HedgeConfig {
            percentile: 0.9,
            min: Duration::from_millis(1),
            max: Duration::from_millis(5),
        });
        let pool = ReplicaPool::deploy(&cluster, pool_cfg).unwrap();
        let straggler =
            pool.replicas().into_iter().find(|r| r.node != NodeId(0)).expect("replica off node 0");

        // The straggler's node pays a delay 10x the hedge ceiling: any
        // request routed there first will hedge, and the loser is
        // cancelled while still inside the injected delay — before its
        // method can be logged.
        cluster.set_worker_delay(straggler.node, Duration::from_millis(60));
        let requests = 8u64;
        for round in 0..requests {
            let out = pool.request(payload(&workload, round)).unwrap();
            assert_eq!(out.len(), workload.batch * 8, "seed {seed}: malformed reply");
        }
        cluster.set_worker_delay(straggler.node, Duration::ZERO);

        // Side-effect witness: each replica counts the requests it
        // actually applied. Exactly-once means the counters sum to the
        // number of results delivered — no lost requests, no duplicates.
        // The pings double as a barrier: actor hosts are serial, so by the
        // time a ping answers, every cancelled loser queued before it has
        // been torn down (and has emitted its trace event).
        let ctx = cluster.driver();
        let mut applied = 0u64;
        for handle in pool.replica_handles() {
            let r = ctx.call_actor_readonly::<u64>(&handle, "ping", Vec::new()).unwrap();
            applied += ctx.get(&r).unwrap();
        }
        assert_eq!(
            applied, requests,
            "seed {seed}: replicas applied {applied} methods for {requests} delivered results"
        );

        cluster.flush_traces().unwrap();
        let log = cluster.trace_log().unwrap();
        log.assert()
            .happened(TraceEventKind::RequestHedged)
            .happened(TraceEventKind::TaskCancelled);
        assert!(
            cluster.metrics().counter(names::SERVE_HEDGES).get() >= 1,
            "seed {seed}: round-robin routing must have hedged at least once"
        );

        pool.shutdown();
        cluster.shutdown();
    }
}

// ----------------------------------------------------------------------
// SLO enforcement and scale-down retirement.
// ----------------------------------------------------------------------

#[test]
fn slo_violations_are_traced_and_scale_down_retires() {
    let cfg = RayConfig::builder().nodes(3).workers_per_node(2).seed(5).tracing(true).build();
    let cluster = Arc::new(Cluster::start(cfg).unwrap());
    register(&cluster);
    let workload = tiny_workload();
    let mut pool_cfg = pool_config(&workload).unwrap();
    pool_cfg.replicas_min = 1;
    pool_cfg.replicas_max = 3;
    // An SLO no real request can meet: every success is a violation.
    pool_cfg.slo = Some(Duration::from_micros(10));
    pool_cfg.autoscale = AutoscaleConfig {
        enabled: true,
        scale_up_depth: 1000.0, // only exercise the scale-down side here
        scale_down_depth: 0.5,
        cooldown: Duration::ZERO,
    };
    let pool = ReplicaPool::deploy(&cluster, pool_cfg).unwrap();

    // Grow to two replicas, serve a little traffic, then let the (idle)
    // autoscaler retire back down to one.
    pool.scale_up().unwrap();
    assert_eq!(pool.replicas().len(), 2);
    for round in 0..4u64 {
        pool.request(payload(&workload, round)).unwrap();
    }
    pool.autoscale_once().unwrap();
    assert_eq!(pool.replicas().len(), 1, "idle pool should retire down to replicas_min");

    cluster.flush_traces().unwrap();
    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::SloViolated)
        .happened(TraceEventKind::ReplicaRetired);
    assert!(log.count(TraceEventKind::ReplicaSpawned) >= 2);
    assert!(cluster.metrics().counter(names::SERVE_SLO_VIOLATIONS).get() >= 4);
    assert_eq!(cluster.metrics().counter(names::SERVE_REPLICAS_RETIRED).get(), 1);
    assert_eq!(cluster.metrics().counter(names::SERVE_REPLICAS_SPAWNED).get(), 2);

    pool.shutdown();
    cluster.shutdown();
}
