//! Deterministic trace-assertion suite for the lifecycle tracing layer.
//!
//! Every test starts a traced cluster, runs a seeded workload, pulls the
//! merged event log out of the GCS event-log table
//! ([`Cluster::trace_log`]), and asserts on it with the chainable
//! [`TraceAssert`] API. The last test is the determinism contract: two
//! runs with the same seed — including a node kill, detector-driven death
//! declaration, and lineage reconstruction — must produce identical
//! event-log signatures (timestamps and retry multiplicity excluded).

use ray_repro::common::config::{FaultConfig, SchedulerPolicy};
use ray_repro::common::metrics::names;
use ray_repro::common::trace::{TraceEntity, TraceEventKind};
use ray_repro::common::{NodeId, RayConfig};
use ray_repro::ray::task::{Arg, ObjectRef, TaskOptions};
use ray_repro::ray::{node_affinity, Cluster};
use std::time::{Duration, Instant};

fn wait_for_counter(cluster: &Cluster, name: &str, min: u64, deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cluster.metrics().counter(name).get() >= min {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

// ----------------------------------------------------------------------
// The state machine, observed end to end.
// ----------------------------------------------------------------------

#[test]
fn task_lifecycle_is_traced_in_order() {
    let cfg = RayConfig::builder().nodes(2).workers_per_node(2).seed(3).tracing(true).build();
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();

    let mut fut: ObjectRef<u64> = ctx.call("inc", vec![Arg::value(&0u64).unwrap()]).unwrap();
    for _ in 0..4 {
        fut = ctx.call("inc", vec![Arg::from_ref(&fut)]).unwrap();
    }
    // Pin the last hop to node 1 so both nodes execute traced work and the
    // result crosses the wire back to the driver's node.
    let pin = TaskOptions::default().with_demand(node_affinity(NodeId(1)));
    let far: ObjectRef<u64> = ctx.call_opts("inc", vec![Arg::from_ref(&fut)], pin).unwrap();
    assert_eq!(ctx.get_with_timeout(&far, Duration::from_secs(30)).unwrap(), 6);

    let log = cluster.trace_log().unwrap();
    let check = log.assert();
    check
        .happened(TraceEventKind::Submitted)
        .happened(TraceEventKind::Running)
        .happened(TraceEventKind::Finished)
        .happened(TraceEventKind::ObjectPut)
        .happened(TraceEventKind::ObjectTransferred)
        .happened_on(NodeId(0), TraceEventKind::Running)
        .happened_on(NodeId(1), TraceEventKind::Running)
        .never(TraceEventKind::Failed)
        .never(TraceEventKind::NodeDeclaredDead)
        .never(TraceEventKind::Reconstructing)
        .deps_fetched_before_running();

    // Every finished task walked the full state machine, in order.
    let mut finished_tasks = 0;
    for entity in log.entities() {
        if !matches!(entity, TraceEntity::Task(_)) {
            continue;
        }
        if log.count_for(entity, TraceEventKind::Finished) > 0 {
            finished_tasks += 1;
            check.ordered(
                entity,
                &[
                    TraceEventKind::Submitted,
                    TraceEventKind::Running,
                    TraceEventKind::Finished,
                ],
            );
        }
    }
    assert_eq!(finished_tasks, 6, "all six tasks must appear in the log");

    // The pinned output materialized on its producer before it was copied.
    check.ordered(
        TraceEntity::Object(far.id()),
        &[TraceEventKind::ObjectPut, TraceEventKind::ObjectTransferred],
    );
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Spill-to-global placement leaves a decision trail.
// ----------------------------------------------------------------------

#[test]
fn global_placement_is_traced_with_decision_reasons() {
    let cfg = RayConfig::builder()
        .nodes(2)
        .workers_per_node(1)
        .seed(5)
        .policy(SchedulerPolicy::Centralized)
        .tracing(true)
        .build();
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();
    let futs: Vec<ObjectRef<u64>> = (0..6)
        .map(|i| ctx.call("inc", vec![Arg::value(&(i as u64)).unwrap()]).unwrap())
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(ctx.get_with_timeout(f, Duration::from_secs(30)).unwrap(), i as u64 + 1);
    }

    let log = cluster.trace_log().unwrap();
    let check = log.assert();
    // The centralized policy forwards everything: every task must show a
    // spill followed by a global placement, and none may fast-path.
    check
        .happened(TraceEventKind::SpilledGlobal)
        .happened(TraceEventKind::GlobalPlaced)
        .never(TraceEventKind::ScheduledLocal)
        .never(TraceEventKind::Failed);
    for entity in log.entities() {
        if matches!(entity, TraceEntity::Task(_)) {
            check.ordered(
                entity,
                &[
                    TraceEventKind::Submitted,
                    TraceEventKind::SpilledGlobal,
                    TraceEventKind::GlobalPlaced,
                    TraceEventKind::Finished,
                ],
            );
        }
    }
    // The spill reason is recorded on the event itself.
    let spills: Vec<_> = log
        .events()
        .iter()
        .filter(|e| e.kind == TraceEventKind::SpilledGlobal)
        .collect();
    assert!(spills.iter().all(|e| e.detail == "policy_forwards_all"), "spill events must carry the local scheduler's decision reason");
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Disabled tracing stays silent.
// ----------------------------------------------------------------------

#[test]
fn disabled_tracing_produces_an_empty_log() {
    let cfg = RayConfig::builder().nodes(2).workers_per_node(2).seed(3).build();
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();
    let fut: ObjectRef<u64> = ctx.call("inc", vec![Arg::value(&1u64).unwrap()]).unwrap();
    assert_eq!(ctx.get_with_timeout(&fut, Duration::from_secs(30)).unwrap(), 2);
    assert!(!cluster.trace().is_enabled());
    let log = cluster.trace_log().unwrap();
    assert!(log.events().is_empty(), "disabled tracing must record nothing");
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Store pressure and GCS flushing leave a trail too.
// ----------------------------------------------------------------------

/// Eviction under memory pressure is observable: spill-enabled stores
/// emit `ObjectSpilled` per victim, spill-disabled stores emit
/// `ObjectEvicted` (the object is gone), and a GCS flush stamps
/// `GcsFlush` on the shard entity.
#[test]
fn store_pressure_and_gcs_flush_are_traced() {
    use ray_repro::common::config::ObjectStoreConfig;

    // Phase 1: spill enabled — victims are recoverable, so the trail is
    // ObjectSpilled (never ObjectEvicted).
    let mut cfg =
        RayConfig::builder().nodes(1).workers_per_node(1).seed(11).tracing(true).build();
    cfg.object_store = ObjectStoreConfig { capacity_bytes: 64 * 1024, spill_enabled: true };
    let cluster = Cluster::start(cfg).unwrap();
    let ctx = cluster.driver();
    for i in 0..8u64 {
        ctx.put(&vec![i as u8; 16 * 1024]).unwrap();
    }
    cluster.gcs().flush_all_to_disk(0).unwrap();
    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::ObjectSpilled)
        .happened(TraceEventKind::GcsFlush)
        .never(TraceEventKind::ObjectEvicted);
    cluster.shutdown();

    // Phase 2: spill disabled — the same pressure drops victims for good,
    // which must be visible as ObjectEvicted.
    let mut cfg =
        RayConfig::builder().nodes(1).workers_per_node(1).seed(11).tracing(true).build();
    cfg.object_store = ObjectStoreConfig { capacity_bytes: 64 * 1024, spill_enabled: false };
    let cluster = Cluster::start(cfg).unwrap();
    let ctx = cluster.driver();
    for i in 0..8u64 {
        ctx.put(&vec![i as u8; 16 * 1024]).unwrap();
    }
    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened(TraceEventKind::ObjectEvicted)
        .never(TraceEventKind::ObjectSpilled);
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Determinism: same seed, same signature — through a full recovery.
// ----------------------------------------------------------------------

/// One seeded run: build a pinned chain, lose its node abruptly, let the
/// failure detector declare the death, restart the slot, and branch off a
/// lost mid-chain object to force recursive lineage reconstruction.
/// Returns the log's canonical signature.
fn traced_recovery_signature(seed: u64) -> String {
    let mut cfg =
        RayConfig::builder().nodes(3).workers_per_node(2).seed(seed).tracing(true).build();
    cfg.fault = FaultConfig {
        lineage_enabled: true,
        max_reconstruction_attempts: 10,
        heartbeat_timeout: Duration::from_millis(250),
        ..FaultConfig::default()
    };
    let cluster = Cluster::start(cfg).unwrap();
    cluster.register_fn1("inc", |x: u64| x + 1);
    let ctx = cluster.driver();

    let pin = TaskOptions::default().with_demand(node_affinity(NodeId(1)));
    let mut fut: ObjectRef<u64> =
        ctx.call_opts("inc", vec![Arg::value(&0u64).unwrap()], pin.clone()).unwrap();
    let mut mid = fut;
    for i in 0..5 {
        fut = ctx.call_opts("inc", vec![Arg::from_ref(&fut)], pin.clone()).unwrap();
        if i == 2 {
            mid = fut;
        }
    }
    assert_eq!(ctx.get_with_timeout(&fut, Duration::from_secs(30)).unwrap(), 6);

    cluster.kill_node_abrupt(NodeId(1));
    assert!(
        wait_for_counter(&cluster, names::NODES_DECLARED_DEAD, 1, Duration::from_secs(15)),
        "detector must declare the crashed node dead"
    );
    cluster.restart_node(NodeId(1)).unwrap();

    // `mid` lived only on the dead node: this get walks the whole pinned
    // prefix back through lineage re-execution.
    let branch: ObjectRef<u64> = ctx.call("inc", vec![Arg::from_ref(&mid)]).unwrap();
    assert_eq!(ctx.get_with_timeout(&branch, Duration::from_secs(120)).unwrap(), 5);

    let log = cluster.trace_log().unwrap();
    log.assert()
        .happened_on(NodeId(1), TraceEventKind::NodeDeclaredDead)
        .count_at_least(TraceEntity::Object(mid.id()), TraceEventKind::Reconstructing, 1)
        .ordered(
            TraceEntity::Object(mid.id()),
            &[
                TraceEventKind::ObjectPut,
                TraceEventKind::Reconstructing,
                TraceEventKind::ObjectPut,
            ],
        )
        .happened(TraceEventKind::Resubmitted)
        .deps_fetched_before_running();
    let sig = log.signature();
    assert!(!sig.is_empty());
    cluster.shutdown();
    sig
}

#[test]
fn same_seed_recovery_runs_have_identical_signatures() {
    let first = traced_recovery_signature(21);
    let second = traced_recovery_signature(21);
    assert_eq!(
        first, second,
        "two same-seed runs through kill + detection + reconstruction must \
         produce the same canonical event sequence"
    );
}
