//! Property-based tests over the core invariants of the system layer.

use std::collections::BTreeMap;

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

use ray_repro::codec;
use ray_repro::common::Resources;

// ----------------------------------------------------------------------
// Codec: anything serde can express must round-trip exactly.
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Payload {
    Empty,
    Scalar(f64),
    Pair(i32, String),
    Record { name: String, values: Vec<u64>, flag: bool },
}

fn payload_strategy() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Empty),
        any::<f64>().prop_map(Payload::Scalar),
        (any::<i32>(), ".{0,16}").prop_map(|(a, b)| Payload::Pair(a, b)),
        (".{0,12}", prop::collection::vec(any::<u64>(), 0..8), any::<bool>())
            .prop_map(|(name, values, flag)| Payload::Record { name, values, flag }),
    ]
}

proptest! {
    #[test]
    fn codec_round_trips_arbitrary_enums(p in payload_strategy()) {
        let bytes = codec::encode(&p).unwrap();
        let back: Payload = codec::decode(&bytes).unwrap();
        // NaN-aware comparison: encode both and compare bytes.
        prop_assert_eq!(codec::encode(&back).unwrap(), bytes);
    }

    #[test]
    fn codec_round_trips_collections(
        v in prop::collection::vec(any::<i64>(), 0..64),
        m in prop::collection::btree_map(".{0,8}", any::<u32>(), 0..16),
        opt in proptest::option::of(any::<u16>()),
    ) {
        let value = (v, m, opt);
        let bytes = codec::encode(&value).unwrap();
        let back: (Vec<i64>, BTreeMap<String, u32>, Option<u16>) =
            codec::decode(&bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    #[test]
    fn codec_rejects_any_truncation(v in prop::collection::vec(any::<u8>(), 1..64)) {
        let bytes = codec::encode(&v).unwrap();
        for cut in 0..bytes.len() {
            prop_assert!(codec::decode::<Vec<u8>>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn tensor_round_trips_any_shape(
        data in prop::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..256)
    ) {
        let t = codec::tensor::TensorF64::from_vec(data.clone());
        let back = codec::tensor::TensorF64::from_bytes(&t.to_bytes()).unwrap();
        prop_assert_eq!(back.into_vec(), data);
    }
}

// ----------------------------------------------------------------------
// Resources: algebraic laws the scheduler's accounting relies on.
// ----------------------------------------------------------------------

fn resources_strategy() -> impl Strategy<Value = Resources> {
    (0.0f64..32.0, 0.0f64..8.0, prop::collection::vec(0.0f64..4.0, 0..3)).prop_map(
        |(cpu, gpu, customs)| {
            let mut r = Resources::new(cpu, gpu);
            for (i, c) in customs.into_iter().enumerate() {
                r.set_custom(&format!("res{i}"), c);
            }
            r
        },
    )
}

proptest! {
    #[test]
    fn resources_sub_then_add_is_identity(
        cap in resources_strategy(),
        demand in resources_strategy(),
    ) {
        if let Some(rest) = cap.checked_sub(&demand) {
            prop_assert_eq!(rest.add(&demand), cap);
        }
    }

    #[test]
    fn resources_fits_iff_checked_sub_succeeds(
        cap in resources_strategy(),
        demand in resources_strategy(),
    ) {
        prop_assert_eq!(cap.fits(&demand), cap.checked_sub(&demand).is_some());
    }

    #[test]
    fn resources_add_is_commutative(a in resources_strategy(), b in resources_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn resources_everything_fits_in_itself(r in resources_strategy()) {
        prop_assert!(r.fits(&r));
        prop_assert!(r.checked_sub(&r).unwrap().is_empty());
    }
}

// ----------------------------------------------------------------------
// Object store: LRU accounting and recoverability invariants.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn store_accounting_and_recoverability(
        sizes in prop::collection::vec(1usize..512, 1..32),
        capacity in 512usize..2048,
    ) {
        use ray_repro::common::config::ObjectStoreConfig;
        use ray_repro::common::{NodeId, ObjectId};
        use ray_repro::object_store::store::LocalObjectStore;

        let store = LocalObjectStore::new(
            NodeId(0),
            &ObjectStoreConfig { capacity_bytes: capacity, spill_enabled: true },
        );
        let mut inserted = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let id = ObjectId::random();
            let data = bytes::Bytes::from(vec![(i % 251) as u8; size]);
            store.put(id, data.clone()).unwrap();
            inserted.push((id, data));
            // Invariant: resident bytes never exceed capacity.
            prop_assert!(store.resident_bytes() <= capacity);
        }
        // Invariant: every object remains readable (memory or spill) and
        // bit-identical.
        for (id, data) in &inserted {
            let got = store.get_local(*id);
            prop_assert_eq!(got.as_ref(), Some(data));
        }
    }

    #[test]
    fn store_churn_with_promotions_keeps_invariants(
        sizes in prop::collection::vec(1usize..256, 4..48),
        reads in prop::collection::vec(any::<prop::sample::Index>(), 0..48),
        capacity in 256usize..1024,
    ) {
        use ray_repro::common::config::ObjectStoreConfig;
        use ray_repro::common::{NodeId, ObjectId};
        use ray_repro::object_store::store::LocalObjectStore;

        let store = LocalObjectStore::new(
            NodeId(1),
            &ObjectStoreConfig { capacity_bytes: capacity, spill_enabled: true },
        );
        // Hammer `put` far past capacity while interleaving reads: a read
        // that hits the spill tier is promoted back to memory, which may
        // evict *other* residents — the accounting and recoverability
        // invariants must survive that churn, not just a pure put storm.
        let mut inserted = Vec::new();
        let mut reads = reads.into_iter();
        for (i, &size) in sizes.iter().enumerate() {
            let id = ObjectId::random();
            let data = bytes::Bytes::from(vec![(i % 199) as u8; size]);
            store.put(id, data.clone()).unwrap();
            inserted.push((id, data));
            prop_assert!(store.resident_bytes() <= capacity);
            if let Some(ix) = reads.next() {
                let (rid, rdata) = &inserted[ix.index(inserted.len())];
                prop_assert_eq!(store.get_local(*rid).as_ref(), Some(rdata));
                prop_assert!(store.resident_bytes() <= capacity);
            }
        }
        for (id, data) in &inserted {
            prop_assert_eq!(store.get_local(*id).as_ref(), Some(data));
            prop_assert!(store.resident_bytes() <= capacity);
        }
    }
}

// ----------------------------------------------------------------------
// GCS chain: sequential consistency of writes through arbitrary
// crash points.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn chain_preserves_all_acked_writes_across_crashes(
        writes in prop::collection::vec(any::<u8>(), 5..40),
        crash_at in prop::collection::vec(0usize..40, 0..3),
        chain_len in 2usize..4,
    ) {
        use ray_repro::common::config::GcsConfig;
        use ray_repro::common::ShardId;
        use ray_repro::gcs::chain::Chain;
        use ray_repro::gcs::kv::{Entry, Key, Table, UpdateOp};
        use ray_repro::common::metrics::MetricsRegistry;

        let cfg = GcsConfig { chain_length: chain_len, ..GcsConfig::default() };
        let chain = Chain::start(
            ShardId(0),
            &cfg,
            MetricsRegistry::new(),
            ray_repro::common::trace::TraceCollector::disabled(),
        ).unwrap();
        for (i, &v) in writes.iter().enumerate() {
            if crash_at.contains(&i) && chain.replica_count() > 0 {
                // Crash a pseudo-random member.
                chain.crash_member(i % chain_len);
            }
            chain
                .write(UpdateOp::Put {
                    key: Key::new(Table::Task, vec![i as u8]),
                    value: bytes::Bytes::from(vec![v]),
                })
                .unwrap();
        }
        // Every acknowledged write must be readable with its final value.
        for (i, &v) in writes.iter().enumerate() {
            let got = chain.read(&Key::new(Table::Task, vec![i as u8])).unwrap();
            prop_assert_eq!(got, Some(Entry::Blob(bytes::Bytes::from(vec![v]))));
        }
        chain.shutdown();
    }
}

// ----------------------------------------------------------------------
// Scheduler: placement decisions respect feasibility and liveness for
// arbitrary cluster states.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn global_placement_is_always_feasible_and_live(
        node_specs in prop::collection::vec((0.0f64..8.0, 0.0f64..2.0, any::<bool>(), 0usize..50), 1..6),
        demand_cpu in 0.0f64..4.0,
        demand_gpu in 0.0f64..2.0,
    ) {
        use ray_repro::common::config::{GcsConfig, SchedulerPolicy};
        use ray_repro::common::{NodeId, TaskId};
        use ray_repro::gcs::Gcs;
        use ray_repro::scheduler::{GlobalScheduler, LoadTable, NodeLoad, TaskDescriptor};
        use std::sync::Arc;
        use std::time::Duration;

        let gcs = Gcs::start(&GcsConfig { num_shards: 1, chain_length: 1, ..GcsConfig::default() })
            .unwrap();
        let load = Arc::new(LoadTable::new(0.2));
        for (i, &(cpu, gpu, alive, queue)) in node_specs.iter().enumerate() {
            load.heartbeat(NodeLoad {
                node: NodeId(i as u32),
                queue_len: queue,
                available: Resources::new(cpu, gpu),
                capacity: Resources::new(cpu, gpu),
                alive,
            });
        }
        let demand = Resources::new(demand_cpu, demand_gpu);
        for policy in [
            SchedulerPolicy::BottomUp,
            SchedulerPolicy::Centralized,
            SchedulerPolicy::LocalityUnaware,
            SchedulerPolicy::Random,
        ] {
            let s = GlobalScheduler::new(policy, load.clone(), gcs.client(), Duration::ZERO, 7);
            let placed = s
                .place(&TaskDescriptor {
                    task: TaskId::random(),
                    demand: demand.clone(),
                    inputs: vec![],
                    submitted_from: NodeId(0),
                })
                .unwrap();
            match placed {
                Some(node) => {
                    let spec = &node_specs[node.index()];
                    // Invariant: chosen node is alive and can ever fit the task.
                    prop_assert!(spec.2, "placed on dead node");
                    prop_assert!(
                        Resources::new(spec.0, spec.1).fits(&demand),
                        "placed on infeasible node"
                    );
                }
                None => {
                    // Invariant: None only when no live node could fit it.
                    let feasible = node_specs
                        .iter()
                        .any(|&(c, g, alive, _)| alive && Resources::new(c, g).fits(&demand));
                    prop_assert!(!feasible, "scheduler gave up despite a feasible node");
                }
            }
        }
        gcs.shutdown();
    }
}

// ----------------------------------------------------------------------
// Codec ↔ task specs: lineage entries survive arbitrary argument shapes.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn task_specs_round_trip_with_arbitrary_args(
        arg_blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..6),
        refs in 0usize..4,
        num_returns in 1u64..5,
        name in "[a-z_]{1,16}",
    ) {
        use ray_repro::common::{FunctionId, ObjectId, TaskId};
        use ray_repro::ray::task::{Arg, TaskKind, TaskSpec};

        let mut args: Vec<Arg> =
            arg_blobs.into_iter().map(|b| Arg::Value(ray_repro::codec::Blob(b))).collect();
        for _ in 0..refs {
            args.push(Arg::ObjectRef(ObjectId::random()));
        }
        let spec = TaskSpec {
            task: TaskId::random(),
            kind: TaskKind::Normal,
            function: FunctionId::for_name(&name),
            function_name: name,
            args,
            num_returns,
            demand: Resources::cpus(1.0),
            deadline_micros: None,
            critical: false,
        };
        let decoded = TaskSpec::decode(&spec.encode().unwrap()).unwrap();
        prop_assert_eq!(&decoded, &spec);
        // Deterministic identity: returns and inputs survive the trip.
        prop_assert_eq!(decoded.return_ids(), spec.return_ids());
        prop_assert_eq!(decoded.input_ids().len(), refs);
    }
}

// ----------------------------------------------------------------------
// Algorithms: BSP ring allreduce equals the sequential sum; GAE matches a
// naive quadratic reference.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn bsp_allreduce_equals_sequential_sum(
        n in 2usize..6,
        len in 1usize..40,
        seed in any::<u64>(),
    ) {
        use ray_repro::bsp::BspWorld;
        use ray_repro::common::config::TransportConfig;
        use ray_repro::rl::envs::EnvRng;

        let mut rng = EnvRng::new(seed);
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..len).map(|_| rng.uniform(-10.0, 10.0)).collect())
            .collect();
        let expected: Vec<f64> =
            (0..len).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
        let world = BspWorld::new(
            n,
            &TransportConfig {
                latency: std::time::Duration::from_micros(1),
                ..TransportConfig::default()
            },
        );
        let inputs_ref = &inputs;
        let results = world.run(move |rank| {
            let mut data = inputs_ref[rank.rank()].clone();
            rank.allreduce_sum(&mut data);
            data
        });
        for r in results {
            for (a, b) in r.iter().zip(expected.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gae_matches_naive_reference(
        rewards in prop::collection::vec(-5.0f64..5.0, 1..30),
        values in prop::collection::vec(-5.0f64..5.0, 30),
        gamma in 0.1f64..0.99,
        lam in 0.1f64..0.99,
        done_every in 2usize..8,
    ) {
        use ray_repro::rl::ppo::gae;
        let n = rewards.len();
        let values = &values[..n];
        let dones: Vec<bool> =
            (0..n).map(|i| (i + 1) % done_every == 0 || i + 1 == n).collect();

        let (adv, _) = gae(&rewards, values, &dones, gamma, lam);

        // Naive O(n²) reference: advantage i sums discounted deltas until
        // the episode boundary.
        for i in 0..n {
            let mut expected = 0.0;
            let mut factor = 1.0;
            for j in i..n {
                let next_v = if dones[j] { 0.0 } else { values.get(j + 1).copied().unwrap_or(0.0) };
                let nonterminal = if dones[j] { 0.0 } else { 1.0 };
                let delta = rewards[j] + gamma * next_v * nonterminal - values[j];
                expected += factor * delta;
                if dones[j] {
                    break;
                }
                factor *= gamma * lam;
            }
            prop_assert!((adv[i] - expected).abs() < 1e-9,
                "adv[{}] = {} vs naive {}", i, adv[i], expected);
        }
    }
}
